//! The chaos fleet: seeded fault-schedule exploration.
//!
//! A [`ChaosScenario`] is a seed plus generation limits; [`ChaosScenario::plan`]
//! expands it deterministically into a fully materialised [`ChaosPlan`] — an
//! overlapping-group topology, a traffic script (with optional time-silence
//! windows past ω), and a timed fault schedule mixing crashes, loss- and
//! delay-mode partitions, heals, voluntary departures (sender churn) and
//! latency spikes. Running a plan replays bit-identically: equal plans
//! produce equal [`history_hash`]es.
//!
//! When a seed fails the checker, [`shrink`] delta-debugs the schedule
//! (faults first, then traffic) down to a minimal failing plan, which
//! serialises to a line-based replay script ([`ChaosPlan::to_script`] /
//! [`ChaosPlan::parse_script`]) suitable for committing under
//! `tests/corpus/`.

use crate::checker::{check_all, CheckOptions, Violation};
use crate::cluster::SimCluster;
use crate::history::{History, HistoryEvent, MessageId};
use newtop_sim::{LatencyModel, NetConfig, PartitionMode, PendingEvent, WanConfig, WanLinkSpec};
use newtop_types::{GroupConfig, GroupId, Instant, OrderMode, ProcessId, Span};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Baseline link latency every plan starts from (and returns to after a
/// spike). Part of the v1 replay format contract.
const BASE_LATENCY: LatencyModel = LatencyModel::Uniform {
    lo: Span::from_micros(100),
    hi: Span::from_micros(3_000),
};

/// Traffic window: all application sends fall in `[1ms, 120ms)`.
const TRAFFIC_END_US: u64 = 120_000;

/// A seeded chaos specification: the seed fully determines the generated
/// [`ChaosPlan`] within these limits.
#[derive(Debug, Clone, Copy)]
pub struct ChaosScenario {
    /// Master seed (drives topology, traffic and the fault schedule).
    pub seed: u64,
    /// Maximum number of processes (minimum 3 are always generated).
    pub max_n: u32,
    /// Maximum number of overlapping groups.
    pub max_groups: u32,
    /// Maximum number of tagged application sends.
    pub max_sends: u32,
    /// Maximum number of fault-schedule entries (a partition episode or a
    /// latency spike counts as one entry even though it expands to two
    /// scripted events).
    pub max_faults: u32,
    /// Churn bias: crash/depart-heavy schedules with the crash budget
    /// raised to `n - 2`, modelling rapid membership churn rather than
    /// network chaos. Off by default; `false` reproduces the classic
    /// fleet's plans bit-for-bit.
    pub churn: bool,
    /// WAN/geo family: runs on the topology-aware bandwidth model — a
    /// seeded multi-region topology with capped per-node uplinks,
    /// asymmetric inter-region trunks, a reorder-hold knob, and extra
    /// congestion-window faults (link/uplink capacity slashes that later
    /// restore). The wire stays exactly-once (the engine's transport
    /// contract; see the `dup_permille` note in `plan`). Timeouts and the
    /// settle horizon are widened so congestion manifests as suspicion,
    /// not false exclusion. Off by default; `false` reproduces the
    /// classic fleet's plans bit-for-bit.
    pub wan: bool,
}

impl ChaosScenario {
    /// The default exploration envelope for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> ChaosScenario {
        ChaosScenario {
            seed,
            max_n: 7,
            max_groups: 3,
            max_sends: 28,
            max_faults: 4,
            churn: false,
            wan: false,
        }
    }

    /// The churn family for `seed`: a fault budget twice the default,
    /// drawn crash/depart-heavy, so most plans shrink the membership
    /// several times while traffic is still flowing.
    #[must_use]
    pub fn churn(seed: u64) -> ChaosScenario {
        ChaosScenario {
            max_faults: 8,
            churn: true,
            ..ChaosScenario::new(seed)
        }
    }

    /// The WAN/geo family for `seed`: classic traffic and faults replayed
    /// over a seeded multi-region bandwidth topology, plus congestion
    /// windows that temporarily slash a trunk's or uplink's capacity.
    #[must_use]
    pub fn wan(seed: u64) -> ChaosScenario {
        ChaosScenario {
            wan: true,
            ..ChaosScenario::new(seed)
        }
    }

    /// Deterministically expands the scenario into a concrete plan.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn plan(&self) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = rng.gen_range(3..=self.max_n.max(3));
        let groups = rng.gen_range(1..=self.max_groups.max(1));
        let sends = rng.gen_range(self.max_sends.max(8) / 2..=self.max_sends.max(8));

        // Overlapping topology: P1 is in every group (exercises the merged
        // cross-group order), everyone else joins with probability 0.6.
        // The WAN family widens ω/Ω so trunk latency plus fair-share
        // queueing raises suspicion levels without crossing the exclusion
        // threshold: congestion must not look like a crash.
        let (omega_us, big_omega_us) = if self.wan {
            (20_000, 250_000)
        } else {
            (5_000, 60_000)
        };
        let mut topology = Vec::new();
        for gi in 0..groups {
            let mut members: Vec<u32> = vec![1];
            for p in 2..=n {
                if rng.gen_bool(0.6) {
                    members.push(p);
                }
            }
            if members.len() < 2 {
                members.push(2.min(n));
            }
            members.dedup();
            let mode = if rng.gen_bool(0.4) {
                OrderMode::Asymmetric
            } else {
                OrderMode::Symmetric
            };
            topology.push(GroupSpec {
                group: GroupId(gi + 1),
                mode,
                omega_us,
                big_omega_us,
                members,
            });
        }

        // Time-silence stress: with probability 1/2 a quiet window several ω
        // long is carved out of the traffic script, so only null messages
        // keep the logical clocks (and Ω suspicion timers) fed.
        let quiet: Option<(u64, u64)> = if rng.gen_bool(0.5) {
            let start = rng.gen_range(10_000..60_000);
            Some((start, start + rng.gen_range(25_000u64..40_000)))
        } else {
            None
        };

        let mut plan_sends = Vec::new();
        for k in 0..sends {
            let gs = &topology[rng.gen_range(0..topology.len())];
            let from = gs.members[rng.gen_range(0..gs.members.len())];
            let mut at_us: u64 = rng.gen_range(1_000..TRAFFIC_END_US);
            if let Some((lo, hi)) = quiet {
                if at_us >= lo && at_us < hi {
                    at_us = hi + (at_us - lo); // shift past the window
                }
            }
            plan_sends.push(SendSpec {
                at_us,
                from,
                group: gs.group,
                mid: u64::from(k),
            });
        }
        plan_sends.sort_by_key(|s| (s.at_us, s.from, s.mid));

        // Fault schedule. Partition episodes never overlap (`cursor` tracks
        // the earliest instant the network is whole again); loss partitions
        // either persist to the end of the run or heal only after both
        // sides had ample time (≥ 2Ω) to exclude each other, so the
        // reliable-FIFO transport assumption is only broken the way the
        // paper means it (partition ⇒ mutual exclusion). Delay partitions
        // stay shorter than Ω: the transport retransmits, nobody need be
        // excluded.
        let mut faults: Vec<FaultSpec> = Vec::new();
        let mut cursor: u64 = 5_000;
        let mut crashes = 0u32;
        // Churn raises the crash budget to everyone-but-two; the classic
        // fleet keeps the conservative cap of 2.
        let max_crashes = if self.churn {
            n.saturating_sub(2)
        } else {
            n.saturating_sub(2).min(2)
        };
        let mut crashed: Vec<u32> = Vec::new();
        let fault_count = if self.churn {
            // Always-faulty: churn plans without churn tell us nothing.
            rng.gen_range(self.max_faults.max(2) / 2..=self.max_faults.max(2))
        } else {
            rng.gen_range(0..=self.max_faults)
        };
        for _ in 0..fault_count {
            // Churn draws crash/depart with 3× the weight of the network
            // faults; the classic fleet draws uniformly. The non-churn
            // draw sequence is unchanged so existing seeds replay
            // bit-identically.
            let kind = if self.churn {
                [0u32, 0, 0, 3, 3, 3, 1, 2][rng.gen_range(0..8usize)]
            } else {
                rng.gen_range(0..4u32)
            };
            match kind {
                0 => {
                    if crashes >= max_crashes {
                        continue;
                    }
                    let victim = loop {
                        let v = rng.gen_range(1..=n);
                        if !crashed.contains(&v) {
                            break v;
                        }
                    };
                    crashed.push(victim);
                    crashes += 1;
                    faults.push(FaultSpec {
                        at_us: rng.gen_range(5_000..110_000),
                        op: FaultOp::Crash { victim },
                    });
                }
                1 => {
                    if cursor >= 100_000 {
                        continue;
                    }
                    let start = rng.gen_range(cursor..=100_000);
                    let mut a: Vec<u32> = Vec::new();
                    let mut b: Vec<u32> = Vec::new();
                    for p in 1..=n {
                        if rng.gen_bool(0.5) {
                            a.push(p)
                        } else {
                            b.push(p)
                        }
                    }
                    if a.is_empty() {
                        a.push(b.remove(0));
                    }
                    if b.is_empty() {
                        b.push(a.remove(0));
                    }
                    if rng.gen_bool(0.5) {
                        // Delay mode: transient, heals within ω..Ω/2.
                        let heal = start + rng.gen_range(2_000u64..25_000);
                        faults.push(FaultSpec {
                            at_us: start,
                            op: FaultOp::Partition {
                                blocks: vec![a, b],
                                mode: PartitionMode::Delay,
                            },
                        });
                        faults.push(FaultSpec {
                            at_us: heal,
                            op: FaultOp::Heal,
                        });
                        cursor = heal + 5_000;
                    } else {
                        // Loss mode: permanent, or heals long after 2Ω. The
                        // classic draw range (150–300 ms) is 2.5–5 Ω at the
                        // classic Ω of 60 ms; the WAN family widens Ω to
                        // 250 ms, so the same draw shifts out past 2 Ω —
                        // a loss cut that healed sooner would restore the
                        // network before either side excluded the other,
                        // losing messages without the partition ⇒ mutual
                        // exclusion the checker (rightly) insists on.
                        faults.push(FaultSpec {
                            at_us: start,
                            op: FaultOp::Partition {
                                blocks: vec![a, b],
                                mode: PartitionMode::Loss,
                            },
                        });
                        if rng.gen_bool(0.5) {
                            let wan_shift = if self.wan {
                                2 * big_omega_us + 50_000 - 150_000
                            } else {
                                0
                            };
                            let heal = start + rng.gen_range(150_000u64..300_000) + wan_shift;
                            faults.push(FaultSpec {
                                at_us: heal,
                                op: FaultOp::Heal,
                            });
                            cursor = heal + 5_000;
                        } else {
                            cursor = u64::MAX; // network never whole again
                        }
                    }
                }
                2 => {
                    // Latency spike (congestion). Light spikes stay inside ω
                    // jitter; heavy ones push one-way latency toward Ω and
                    // can trigger false suspicion → refutation traffic.
                    let start = rng.gen_range(5_000..100_000);
                    let dur = rng.gen_range(10_000u64..40_000);
                    let model = if rng.gen_bool(0.3) {
                        LatencyModel::Uniform {
                            lo: Span::from_micros(15_000),
                            hi: Span::from_micros(45_000),
                        }
                    } else {
                        LatencyModel::Uniform {
                            lo: Span::from_micros(2_000),
                            hi: Span::from_micros(8_000),
                        }
                    };
                    faults.push(FaultSpec {
                        at_us: start,
                        op: FaultOp::Latency { model },
                    });
                    faults.push(FaultSpec {
                        at_us: start + dur,
                        op: FaultOp::Latency {
                            model: BASE_LATENCY,
                        },
                    });
                }
                _ => {
                    // Sender churn: a voluntary departure mid-traffic.
                    let gs = &topology[rng.gen_range(0..topology.len())];
                    let p = gs.members[rng.gen_range(0..gs.members.len())];
                    faults.push(FaultSpec {
                        at_us: rng.gen_range(5_000..110_000),
                        op: FaultOp::Depart { p, group: gs.group },
                    });
                }
            }
        }
        // WAN topology and congestion-window faults. Every draw below is
        // gated on `self.wan`, so the classic and churn families consume
        // exactly the draw sequence they always did and replay
        // bit-identically.
        let wan = if self.wan {
            let regions = rng.gen_range(2..=3u32);
            const UPLINKS: [u64; 4] = [64_000, 128_000, 256_000, 512_000];
            let mut nodes = Vec::new();
            for p in 1..=n {
                nodes.push(WanNodeSpec {
                    p,
                    region: rng.gen_range(0..regions),
                    uplink_bps: UPLINKS[rng.gen_range(0..UPLINKS.len())],
                });
            }
            // Every directed region pair gets its own independent draw —
            // asymmetric latency and capacity by construction.
            let mut routes = Vec::new();
            for from in 0..regions {
                for to in 0..regions {
                    if from == to {
                        continue;
                    }
                    let lo_us = rng.gen_range(5_000u64..20_000);
                    routes.push(WanRouteSpec {
                        from,
                        to,
                        lo_us,
                        hi_us: lo_us + rng.gen_range(5_000u64..40_000),
                        capacity_bps: rng.gen_range(128u64..=1024) * 1_000,
                    });
                }
            }
            Some(WanSpec {
                // The engine's transport contract is exactly-once per link
                // — the TCP plane enforces it by link-sequence dedup below
                // the engine, and the sim harness binds the engine straight
                // to the wire with no such layer in between. Family plans
                // therefore keep the wire exactly-once; the duplication
                // knob stays a network-model feature (pinned by the sim's
                // unit and property tests) for hosts that model their own
                // dedup, and hand-written scripts may still set `dup-pm`.
                dup_permille: 0,
                reorder_permille: rng.gen_range(0..=50),
                reorder_hold_us: rng.gen_range(500..5_000),
                nodes,
                routes,
            })
        } else {
            None
        };
        if let Some(ws) = &wan {
            // Congestion windows: a trunk or an uplink drops to 1/8th of
            // its capacity (with a latency bump for trunks) and restores
            // after 15–40 ms — long enough to build a real backlog, short
            // enough to drain well inside Ω.
            for _ in 0..rng.gen_range(1..=2u32) {
                let start = rng.gen_range(5_000u64..80_000);
                let end = start + rng.gen_range(15_000u64..40_000);
                if rng.gen_bool(0.6) {
                    let r = &ws.routes[rng.gen_range(0..ws.routes.len())];
                    let lo_us = r.lo_us + rng.gen_range(10_000u64..40_000);
                    faults.push(FaultSpec {
                        at_us: start,
                        op: FaultOp::WanLink {
                            from: r.from,
                            to: r.to,
                            lo_us,
                            hi_us: lo_us + rng.gen_range(5_000u64..30_000),
                            capacity_bps: (r.capacity_bps / 8).max(1_000),
                        },
                    });
                    faults.push(FaultSpec {
                        at_us: end,
                        op: FaultOp::WanLink {
                            from: r.from,
                            to: r.to,
                            lo_us: r.lo_us,
                            hi_us: r.hi_us,
                            capacity_bps: r.capacity_bps,
                        },
                    });
                } else {
                    let ns = &ws.nodes[rng.gen_range(0..ws.nodes.len())];
                    faults.push(FaultSpec {
                        at_us: start,
                        op: FaultOp::WanUplink {
                            p: ns.p,
                            bps: (ns.uplink_bps / 8).max(1_000),
                        },
                    });
                    faults.push(FaultSpec {
                        at_us: end,
                        op: FaultOp::WanUplink {
                            p: ns.p,
                            bps: ns.uplink_bps,
                        },
                    });
                }
            }
        }
        faults.sort_by_key(FaultSpec::sort_key);

        let last_event_us = plan_sends
            .iter()
            .map(|s| s.at_us)
            .chain(faults.iter().map(|f| f.at_us))
            .max()
            .unwrap_or(0);
        // Generous settle time: Ω-driven membership plus the delivery
        // barrier need several rounds after the last scripted event — and
        // the WAN family's widened Ω needs proportionally more.
        let settle_us = if self.wan { 3_000_000 } else { 1_200_000 };
        ChaosPlan {
            seed: self.seed,
            n,
            topology,
            sends: plan_sends,
            faults,
            wan,
            mc_steps: Vec::new(),
            horizon_us: last_event_us + settle_us,
        }
    }
}

/// One node's attachment in a WAN plan: home region and uplink capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanNodeSpec {
    /// The process.
    pub p: u32,
    /// Its home region.
    pub region: u32,
    /// Its uplink capacity, bytes per second.
    pub uplink_bps: u64,
}

/// One directed inter-region trunk in a WAN plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanRouteSpec {
    /// Source region.
    pub from: u32,
    /// Destination region.
    pub to: u32,
    /// Propagation latency lower bound, µs.
    pub lo_us: u64,
    /// Propagation latency upper bound, µs.
    pub hi_us: u64,
    /// Trunk capacity, bytes per second.
    pub capacity_bps: u64,
}

/// The WAN topology of a plan: attachments, trunks and wire-chaos knobs.
/// Part of the plan's identity — equal plans (including this spec) replay
/// equal histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanSpec {
    /// Per-mille probability a delivery is duplicated.
    pub dup_permille: u32,
    /// Per-mille probability a delivery is held back (manifesting as
    /// reorder-induced queueing delay; per-link FIFO still holds).
    pub reorder_permille: u32,
    /// Maximum hold for a reordered delivery, µs.
    pub reorder_hold_us: u64,
    /// Node attachments (every process appears exactly once).
    pub nodes: Vec<WanNodeSpec>,
    /// Directed inter-region trunks (every ordered region pair).
    pub routes: Vec<WanRouteSpec>,
}

impl WanSpec {
    /// Materialises the simulator configuration.
    #[must_use]
    pub fn to_wan_config(&self) -> WanConfig {
        let mut cfg = WanConfig::new()
            .with_duplication(self.dup_permille)
            .with_reorder(
                self.reorder_permille,
                Span::from_micros(self.reorder_hold_us),
            );
        for ns in &self.nodes {
            cfg = cfg.attach_with_uplink(ProcessId(ns.p), ns.region, ns.uplink_bps);
        }
        for r in &self.routes {
            cfg = cfg.with_route(
                r.from,
                r.to,
                WanLinkSpec::new(
                    LatencyModel::Uniform {
                        lo: Span::from_micros(r.lo_us),
                        hi: Span::from_micros(r.hi_us),
                    },
                    r.capacity_bps,
                ),
            );
        }
        cfg
    }
}

/// One group of the generated topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Group id.
    pub group: GroupId,
    /// Ordering variant.
    pub mode: OrderMode,
    /// Null-message deadline ω, in µs.
    pub omega_us: u64,
    /// Suspicion timeout Ω, in µs.
    pub big_omega_us: u64,
    /// Member process ids.
    pub members: Vec<u32>,
}

/// One tagged application send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSpec {
    /// Virtual-time instant, µs.
    pub at_us: u64,
    /// Sending process.
    pub from: u32,
    /// Destination group.
    pub group: GroupId,
    /// Workload tag.
    pub mid: u64,
}

/// A scripted fault operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Crash `victim` (messages still in its send pipeline are lost).
    Crash {
        /// The process to kill.
        victim: u32,
    },
    /// Install a partition.
    Partition {
        /// Connectivity blocks.
        blocks: Vec<Vec<u32>>,
        /// Loss (drop crossing messages) or delay (park until heal).
        mode: PartitionMode,
    },
    /// Reconnect everyone (releases delay-parked messages).
    Heal,
    /// `p` voluntarily departs `group`.
    Depart {
        /// The departing process.
        p: u32,
        /// The group it leaves.
        group: GroupId,
    },
    /// Change the link latency model.
    Latency {
        /// The model in force from this instant.
        model: LatencyModel,
    },
    /// Change an inter-region WAN trunk: a congestion window (capacity
    /// slash plus latency bump) or its later restoration. Only meaningful
    /// in a plan with a [`WanSpec`].
    WanLink {
        /// Source region.
        from: u32,
        /// Destination region.
        to: u32,
        /// New propagation latency lower bound, µs.
        lo_us: u64,
        /// New propagation latency upper bound, µs.
        hi_us: u64,
        /// New trunk capacity, bytes per second.
        capacity_bps: u64,
    },
    /// Change one node's WAN uplink capacity (asymmetric degradation).
    WanUplink {
        /// The affected process.
        p: u32,
        /// New uplink capacity, bytes per second.
        bps: u64,
    },
}

/// A fault operation bound to a virtual-time instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Virtual-time instant, µs.
    pub at_us: u64,
    /// The operation.
    pub op: FaultOp,
}

impl FaultSpec {
    fn sort_key(&self) -> (u64, u8) {
        // Heals sort after same-instant partitions so a degenerate schedule
        // stays meaningful.
        let rank = match self.op {
            FaultOp::Crash { .. } => 0,
            FaultOp::Partition { .. } => 1,
            FaultOp::Latency { .. } => 2,
            FaultOp::Depart { .. } => 3,
            FaultOp::Heal => 4,
            FaultOp::WanLink { .. } => 5,
            FaultOp::WanUplink { .. } => 6,
        };
        (self.at_us, rank)
    }
}

/// One explicit event-order choice in a model-checker schedule. Unlike the
/// timed [`FaultSpec`]/[`SendSpec`] script, an `McStep` names *which* event
/// fires next; virtual time advances to the fired event's own timestamp.
/// Steps that name nothing currently fireable (after shrinking removed the
/// step that would have armed them) are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McStep {
    /// Deliver the FIFO-head message of the link `src → dst`.
    Deliver {
        /// Sending process.
        src: u32,
        /// Receiving process.
        dst: u32,
    },
    /// Fire `p`'s pending timer wake-up.
    Wake {
        /// The process whose tick runs.
        p: u32,
    },
    /// Issue a tagged application multicast at the current virtual time.
    Send {
        /// Sending process.
        from: u32,
        /// Destination group.
        group: GroupId,
        /// Workload tag.
        mid: u64,
    },
    /// Crash `victim` at the current virtual time.
    Crash {
        /// The process to kill.
        victim: u32,
    },
}

/// A fully materialised chaos run: topology + traffic + fault schedule.
/// Equal plans replay equal histories ([`history_hash`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Network RNG seed.
    pub seed: u64,
    /// Number of processes (`P1..=Pn`).
    pub n: u32,
    /// The groups.
    pub topology: Vec<GroupSpec>,
    /// The traffic script.
    pub sends: Vec<SendSpec>,
    /// The fault schedule.
    pub faults: Vec<FaultSpec>,
    /// The WAN topology, when the plan runs on the bandwidth model.
    /// `None` replays on the classic constant-latency transport.
    pub wan: Option<WanSpec>,
    /// Model-checker event-order schedule. When non-empty the plan replays
    /// under external scheduling — the timed `sends`/`faults` script is
    /// rejected (the generator never mixes the two), the network runs the
    /// deterministic fixed-latency default, and the run executes exactly
    /// these steps instead of free-running to the horizon.
    pub mc_steps: Vec<McStep>,
    /// Total virtual run time, µs.
    pub horizon_us: u64,
}

impl ChaosPlan {
    /// Builds the cluster, scripts everything and runs to the horizon —
    /// or, for a model-checker plan (`mc_steps` non-empty), replays the
    /// explicit event-order schedule step by step.
    #[must_use]
    pub fn run(&self) -> SimCluster {
        if !self.mc_steps.is_empty() {
            return self.run_mc_schedule();
        }
        let net = NetConfig::new(self.seed ^ 0x9E37_79B9).with_latency(BASE_LATENCY);
        let mut cluster = SimCluster::new(self.n, net);
        if let Some(ws) = &self.wan {
            cluster
                .set_wan(ws.to_wan_config())
                .expect("generated WAN config validates");
        }
        for gs in &self.topology {
            let cfg = GroupConfig::new(gs.mode)
                .with_omega(Span::from_micros(gs.omega_us))
                .with_big_omega(Span::from_micros(gs.big_omega_us));
            cluster.bootstrap_group(gs.group, &gs.members, cfg);
        }
        for s in &self.sends {
            cluster.schedule_send(
                Instant::from_micros(s.at_us),
                s.from,
                s.group,
                MessageId(s.mid),
            );
        }
        for f in &self.faults {
            let at = Instant::from_micros(f.at_us);
            match &f.op {
                FaultOp::Crash { victim } => cluster.schedule_crash(at, *victim),
                FaultOp::Partition { blocks, mode } => {
                    let views: Vec<&[u32]> = blocks.iter().map(Vec::as_slice).collect();
                    cluster.schedule_partition_mode(at, &views, *mode);
                }
                FaultOp::Heal => cluster.schedule_heal(at),
                FaultOp::Depart { p, group } => cluster.schedule_depart(at, *p, *group),
                FaultOp::Latency { model } => cluster.schedule_set_latency(at, *model),
                FaultOp::WanLink {
                    from,
                    to,
                    lo_us,
                    hi_us,
                    capacity_bps,
                } => cluster.schedule_set_wan_link(
                    at,
                    *from,
                    *to,
                    WanLinkSpec::new(
                        LatencyModel::Uniform {
                            lo: Span::from_micros(*lo_us),
                            hi: Span::from_micros(*hi_us),
                        },
                        *capacity_bps,
                    ),
                ),
                FaultOp::WanUplink { p, bps } => cluster.schedule_set_wan_uplink(at, *p, *bps),
            }
        }
        cluster.run_for(Span::from_micros(self.horizon_us));
        cluster
    }

    /// Builds the model-checker fixture and applies the explicit schedule.
    /// The network is the zero-latency, zero-overhead fixed model (no
    /// random draws), exactly as `newtop-exp mc` explores, so a shrunk
    /// counterexample replays the violating interleaving bit-identically.
    /// With zero latency a delivery never advances the virtual clock (time
    /// moves only when a timer wake fires), so interleavings that differ
    /// only in the order of independent deliveries converge to the same
    /// state digest — this is what makes visited-state dedup effective.
    pub(crate) fn run_mc_schedule(&self) -> SimCluster {
        let net = NetConfig::new(self.seed)
            .with_latency(LatencyModel::Fixed(Span::ZERO))
            .with_send_overhead(Span::ZERO);
        let mut cluster = SimCluster::new(self.n, net);
        for gs in &self.topology {
            let cfg = GroupConfig::new(gs.mode)
                .with_omega(Span::from_micros(gs.omega_us))
                .with_big_omega(Span::from_micros(gs.big_omega_us));
            cluster.bootstrap_group(gs.group, &gs.members, cfg);
        }
        for step in &self.mc_steps {
            // A step that names nothing currently fireable is skipped: ddmin
            // shrink candidates routinely remove the step that would have
            // armed a later one.
            match *step {
                McStep::Deliver { src, dst } => {
                    cluster.fire(PendingEvent::Deliver {
                        src: ProcessId(src),
                        dst: ProcessId(dst),
                        at: Instant::ZERO,
                    });
                }
                McStep::Wake { p } => {
                    cluster.fire(PendingEvent::Wake {
                        node: ProcessId(p),
                        at: Instant::ZERO,
                    });
                }
                McStep::Send { from, group, mid } => {
                    cluster.invoke_multicast(from, group, MessageId(mid));
                }
                McStep::Crash { victim } => {
                    cluster.crash_now(victim);
                }
            }
        }
        cluster
    }

    /// The checker configuration appropriate for this plan. Safety (order,
    /// causality, views, the delivery barrier, no-delivery-after-exclusion)
    /// is always asserted. Quiescent liveness is asserted too — the
    /// generator only emits schedules inside the protocol's assumption
    /// envelope (see [`ChaosScenario::plan`]) — except when a loss-mode
    /// partition heals mid-run, where re-connected-but-excluded senders may
    /// legitimately leave one side short of the global send set.
    #[must_use]
    pub fn check_options(&self) -> CheckOptions {
        let healed_loss = self.faults.iter().any(|f| {
            matches!(
                f.op,
                FaultOp::Partition {
                    mode: PartitionMode::Loss,
                    ..
                }
            )
        }) && self.faults.iter().any(|f| matches!(f.op, FaultOp::Heal));
        // A model-checker schedule is a bounded prefix of a run, not a run
        // to quiescence: liveness (everything sent gets delivered) is
        // meaningless there and only safety is asserted.
        CheckOptions {
            liveness: !healed_loss && self.mc_steps.is_empty(),
            ..CheckOptions::default()
        }
    }

    /// Runs the plan and checks it, returning violations (empty = pass).
    #[must_use]
    pub fn run_and_check(&self, opts: &CheckOptions) -> Vec<Violation> {
        check_all(&self.run().history(), opts)
    }

    /// Runs the plan, catching an engine panic and reporting it as
    /// `Err(message)` — the fleet treats a crash of the engine itself as
    /// the most severe failure, and the shrinker minimises toward it like
    /// any other.
    ///
    /// # Errors
    ///
    /// The payload of the engine panic, as a string.
    pub fn try_run_history(&self) -> Result<History, String> {
        let plan = self.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || plan.run().history()))
            .map_err(|e| {
                e.downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| e.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "engine panicked".to_string())
            })
    }

    /// Like [`ChaosPlan::run_and_check`], but panic-catching (see
    /// [`ChaosPlan::try_run_history`]).
    ///
    /// # Errors
    ///
    /// The payload of the engine panic, as a string.
    pub fn try_run_and_check(&self, opts: &CheckOptions) -> Result<Vec<Violation>, String> {
        self.try_run_history().map(|h| check_all(&h, opts))
    }

    /// Serialises to the v1 replay-script format, optionally recording the
    /// expected history hash for exact-replay verification.
    #[must_use]
    pub fn to_script(&self, expect_hash: Option<u64>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "newtop-chaos v1");
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "n {}", self.n);
        let _ = writeln!(s, "horizon-us {}", self.horizon_us);
        if let Some(ws) = &self.wan {
            let _ = writeln!(
                s,
                "wan dup-pm {} reorder-pm {} hold-us {}",
                ws.dup_permille, ws.reorder_permille, ws.reorder_hold_us
            );
            for ns in &ws.nodes {
                let _ = writeln!(s, "wan-node {} {} {}", ns.p, ns.region, ns.uplink_bps);
            }
            for r in &ws.routes {
                let _ = writeln!(
                    s,
                    "wan-route {} {} {} {} {}",
                    r.from, r.to, r.lo_us, r.hi_us, r.capacity_bps
                );
            }
        }
        for g in &self.topology {
            let mode = match g.mode {
                OrderMode::Symmetric => "symmetric",
                OrderMode::Asymmetric => "asymmetric",
            };
            let members: Vec<String> = g.members.iter().map(u32::to_string).collect();
            let _ = writeln!(
                s,
                "group {} {mode} omega-us {} big-omega-us {} members {}",
                g.group.0,
                g.omega_us,
                g.big_omega_us,
                members.join(",")
            );
        }
        for snd in &self.sends {
            let _ = writeln!(
                s,
                "send {} {} {} {}",
                snd.at_us, snd.from, snd.group.0, snd.mid
            );
        }
        for f in &self.faults {
            let _ = write!(s, "fault {} ", f.at_us);
            match &f.op {
                FaultOp::Crash { victim } => {
                    let _ = writeln!(s, "crash {victim}");
                }
                FaultOp::Partition { blocks, mode } => {
                    let mode = match mode {
                        PartitionMode::Loss => "loss",
                        PartitionMode::Delay => "delay",
                    };
                    let blocks: Vec<String> = blocks
                        .iter()
                        .map(|b| b.iter().map(u32::to_string).collect::<Vec<_>>().join(","))
                        .collect();
                    let _ = writeln!(s, "partition {mode} {}", blocks.join("|"));
                }
                FaultOp::Heal => {
                    let _ = writeln!(s, "heal");
                }
                FaultOp::Depart { p, group } => {
                    let _ = writeln!(s, "depart {p} {}", group.0);
                }
                FaultOp::Latency { model } => match model {
                    LatencyModel::Fixed(d) => {
                        let _ = writeln!(s, "latency fixed {}", d.as_micros());
                    }
                    LatencyModel::Uniform { lo, hi } => {
                        let _ =
                            writeln!(s, "latency uniform {} {}", lo.as_micros(), hi.as_micros());
                    }
                },
                FaultOp::WanLink {
                    from,
                    to,
                    lo_us,
                    hi_us,
                    capacity_bps,
                } => {
                    let _ = writeln!(s, "wan-link {from} {to} {lo_us} {hi_us} {capacity_bps}");
                }
                FaultOp::WanUplink { p, bps } => {
                    let _ = writeln!(s, "wan-uplink {p} {bps}");
                }
            }
        }
        for step in &self.mc_steps {
            match *step {
                McStep::Deliver { src, dst } => {
                    let _ = writeln!(s, "mc-step deliver {src} {dst}");
                }
                McStep::Wake { p } => {
                    let _ = writeln!(s, "mc-step wake {p}");
                }
                McStep::Send { from, group, mid } => {
                    let _ = writeln!(s, "mc-step send {from} {} {mid}", group.0);
                }
                McStep::Crash { victim } => {
                    let _ = writeln!(s, "mc-step crash {victim}");
                }
            }
        }
        if let Some(h) = expect_hash {
            let _ = writeln!(s, "expect-hash {h:016x}");
        }
        s
    }

    /// Parses the v1 replay-script format.
    ///
    /// # Errors
    ///
    /// Returns a line-tagged description of the first malformed entry.
    #[allow(clippy::too_many_lines)]
    pub fn parse_script(text: &str) -> Result<(ChaosPlan, Option<u64>), String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        });
        let err = |ln: usize, m: &str| format!("line {}: {m}", ln + 1);
        let (ln0, magic) = lines.next().ok_or("empty script")?;
        if magic.trim() != "newtop-chaos v1" {
            return Err(err(ln0, "expected header `newtop-chaos v1`"));
        }
        let mut plan = ChaosPlan {
            seed: 0,
            n: 0,
            topology: Vec::new(),
            sends: Vec::new(),
            faults: Vec::new(),
            wan: None,
            mc_steps: Vec::new(),
            horizon_us: 0,
        };
        let mut expect_hash = None;
        for (ln, raw) in lines {
            let toks: Vec<&str> = raw.split_whitespace().collect();
            // Body errors quote the offending line itself, not just its
            // number — corpus scripts get edited by hand.
            let err = |m: &str| format!("line {}: {m}: `{}`", ln + 1, raw.trim());
            let parse_u64 = |t: &str| t.parse::<u64>().map_err(|_| err("bad integer"));
            let parse_u32 = |t: &str| t.parse::<u32>().map_err(|_| err("bad integer"));
            match toks.as_slice() {
                ["seed", v] => plan.seed = parse_u64(v)?,
                ["n", v] => plan.n = parse_u32(v)?,
                ["horizon-us", v] => plan.horizon_us = parse_u64(v)?,
                ["group", g, mode, "omega-us", o, "big-omega-us", bo, "members", m] => {
                    let mode = match *mode {
                        "symmetric" => OrderMode::Symmetric,
                        "asymmetric" => OrderMode::Asymmetric,
                        _ => return Err(err("mode must be symmetric|asymmetric")),
                    };
                    let members = m
                        .split(',')
                        .map(|t| t.parse::<u32>().map_err(|_| err("bad member id")))
                        .collect::<Result<Vec<u32>, String>>()?;
                    plan.topology.push(GroupSpec {
                        group: GroupId(parse_u32(g)?),
                        mode,
                        omega_us: parse_u64(o)?,
                        big_omega_us: parse_u64(bo)?,
                        members,
                    });
                }
                ["send", at, from, g, mid] => plan.sends.push(SendSpec {
                    at_us: parse_u64(at)?,
                    from: parse_u32(from)?,
                    group: GroupId(parse_u32(g)?),
                    mid: parse_u64(mid)?,
                }),
                ["wan", "dup-pm", d, "reorder-pm", r, "hold-us", h] => {
                    let dup_permille = parse_u32(d)?;
                    let reorder_permille = parse_u32(r)?;
                    if dup_permille > 1000 || reorder_permille > 1000 {
                        return Err(err("per-mille probability exceeds 1000"));
                    }
                    plan.wan = Some(WanSpec {
                        dup_permille,
                        reorder_permille,
                        reorder_hold_us: parse_u64(h)?,
                        nodes: Vec::new(),
                        routes: Vec::new(),
                    });
                }
                ["wan-node", p, region, bps] => {
                    let uplink_bps = parse_u64(bps)?;
                    if uplink_bps == 0 {
                        return Err(err("uplink capacity must be nonzero"));
                    }
                    plan.wan
                        .as_mut()
                        .ok_or_else(|| err("wan-node before wan"))?
                        .nodes
                        .push(WanNodeSpec {
                            p: parse_u32(p)?,
                            region: parse_u32(region)?,
                            uplink_bps,
                        });
                }
                ["wan-route", from, to, lo, hi, bps] => {
                    let (lo_us, hi_us) = (parse_u64(lo)?, parse_u64(hi)?);
                    if lo_us > hi_us {
                        return Err(err("inverted latency bounds"));
                    }
                    let capacity_bps = parse_u64(bps)?;
                    if capacity_bps == 0 {
                        return Err(err("trunk capacity must be nonzero"));
                    }
                    plan.wan
                        .as_mut()
                        .ok_or_else(|| err("wan-route before wan"))?
                        .routes
                        .push(WanRouteSpec {
                            from: parse_u32(from)?,
                            to: parse_u32(to)?,
                            lo_us,
                            hi_us,
                            capacity_bps,
                        });
                }
                ["fault", at, rest @ ..] => {
                    let at_us = parse_u64(at)?;
                    let op = match rest {
                        ["crash", v] => FaultOp::Crash {
                            victim: parse_u32(v)?,
                        },
                        ["partition", mode, blocks] => {
                            let mode = match *mode {
                                "loss" => PartitionMode::Loss,
                                "delay" => PartitionMode::Delay,
                                _ => return Err(err("partition mode must be loss|delay")),
                            };
                            let blocks = blocks
                                .split('|')
                                .map(|b| {
                                    b.split(',')
                                        .map(|t| t.parse::<u32>().map_err(|_| err("bad block id")))
                                        .collect::<Result<Vec<u32>, String>>()
                                })
                                .collect::<Result<Vec<Vec<u32>>, String>>()?;
                            FaultOp::Partition { blocks, mode }
                        }
                        ["heal"] => FaultOp::Heal,
                        ["depart", p, g] => FaultOp::Depart {
                            p: parse_u32(p)?,
                            group: GroupId(parse_u32(g)?),
                        },
                        ["latency", "fixed", d] => FaultOp::Latency {
                            model: LatencyModel::Fixed(Span::from_micros(parse_u64(d)?)),
                        },
                        ["latency", "uniform", lo, hi] => {
                            let (lo_us, hi_us) = (parse_u64(lo)?, parse_u64(hi)?);
                            // Validated at parse time, not per sample
                            // mid-run (see `LatencyModel::validate`).
                            if lo_us > hi_us {
                                return Err(err("inverted latency bounds"));
                            }
                            FaultOp::Latency {
                                model: LatencyModel::Uniform {
                                    lo: Span::from_micros(lo_us),
                                    hi: Span::from_micros(hi_us),
                                },
                            }
                        }
                        ["wan-link", from, to, lo, hi, bps] => {
                            let (lo_us, hi_us) = (parse_u64(lo)?, parse_u64(hi)?);
                            if lo_us > hi_us {
                                return Err(err("inverted latency bounds"));
                            }
                            let capacity_bps = parse_u64(bps)?;
                            if capacity_bps == 0 {
                                return Err(err("trunk capacity must be nonzero"));
                            }
                            FaultOp::WanLink {
                                from: parse_u32(from)?,
                                to: parse_u32(to)?,
                                lo_us,
                                hi_us,
                                capacity_bps,
                            }
                        }
                        ["wan-uplink", p, bps] => {
                            let bps = parse_u64(bps)?;
                            if bps == 0 {
                                return Err(err("uplink capacity must be nonzero"));
                            }
                            FaultOp::WanUplink {
                                p: parse_u32(p)?,
                                bps,
                            }
                        }
                        _ => return Err(err("unknown fault")),
                    };
                    plan.faults.push(FaultSpec { at_us, op });
                }
                ["mc-step", rest @ ..] => {
                    let step = match rest {
                        ["deliver", src, dst] => McStep::Deliver {
                            src: parse_u32(src)?,
                            dst: parse_u32(dst)?,
                        },
                        ["wake", p] => McStep::Wake { p: parse_u32(p)? },
                        ["send", from, g, mid] => McStep::Send {
                            from: parse_u32(from)?,
                            group: GroupId(parse_u32(g)?),
                            mid: parse_u64(mid)?,
                        },
                        ["crash", v] => McStep::Crash {
                            victim: parse_u32(v)?,
                        },
                        _ => return Err(err("unknown mc-step")),
                    };
                    plan.mc_steps.push(step);
                }
                ["expect-hash", h] => {
                    expect_hash = Some(u64::from_str_radix(h, 16).map_err(|_| err("bad hash"))?);
                }
                _ => return Err(err("unknown directive")),
            }
        }
        if plan.n == 0 || plan.topology.is_empty() || plan.horizon_us == 0 {
            return Err("script missing n / group / horizon-us".to_string());
        }
        Ok((plan, expect_hash))
    }
}

/// A stable digest of everything observable in a history (per-process event
/// streams plus the crash set). Replaying the same plan must reproduce the
/// same hash bit-for-bit; the corpus test enforces this.
#[must_use]
pub fn history_hash(h: &History) -> u64 {
    // FNV-1a over a canonical rendering. The Debug formatting of history
    // events is deterministic (integers, BTree-ordered sets) and covers
    // every field, including payload bytes and timestamps.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            acc ^= u64::from(*b);
            acc = acc.wrapping_mul(PRIME);
        }
    };
    for (p, events) in &h.events {
        eat(&p.0.to_be_bytes());
        for e in events {
            eat(format!("{e:?}").as_bytes());
        }
    }
    let mut crashed = h.crashed.clone();
    crashed.sort_unstable();
    for p in crashed {
        eat(&p.0.to_be_bytes());
    }
    acc
}

/// Outcome of shrinking a failing plan.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimised still-failing plan.
    pub plan: ChaosPlan,
    /// The violations the minimised plan produces.
    pub violations: Vec<Violation>,
    /// Number of candidate runs executed while shrinking.
    pub runs: usize,
}

/// Delta-debugs a failing plan down to a locally minimal fault schedule and
/// traffic script: first the fault events, then the sends, by ddmin-style
/// chunk bisection (any violation counts as "still failing"). The checker
/// options are fixed for the whole shrink so the failure being chased does
/// not shift meaning as faults disappear.
///
/// Independent removal probes run on up to `jobs` threads; the result —
/// plan, violations and run count — is byte-identical to `jobs = 1`
/// (see [`ddmin`]).
#[must_use]
pub fn shrink(plan: &ChaosPlan, opts: &CheckOptions, max_runs: usize, jobs: usize) -> ShrinkResult {
    let mut runs = 0usize;
    let mut current = plan.clone();
    let fails = |probe: &ChaosPlan| !matches!(probe.try_run_and_check(opts), Ok(v) if v.is_empty());
    assert!(fails(&current), "shrink requires a failing plan");

    // Phase 1: minimise the fault schedule.
    let faults = ddmin(&current.faults, &mut runs, max_runs, jobs, |cand| {
        let mut probe = current.clone();
        probe.faults = cand.to_vec();
        fails(&probe)
    });
    current.faults = faults;
    // Phase 2: minimise the traffic.
    let sends = ddmin(&current.sends, &mut runs, max_runs, jobs, |cand| {
        let mut probe = current.clone();
        probe.sends = cand.to_vec();
        fails(&probe)
    });
    current.sends = sends;
    // Phase 3: minimise a model-checker schedule. Removing a step may make
    // later ones unfireable — they are skipped on replay, so every ddmin
    // candidate is still a valid (if shorter) schedule.
    let mc_steps = ddmin(&current.mc_steps, &mut runs, max_runs, jobs, |cand| {
        let mut probe = current.clone();
        probe.mc_steps = cand.to_vec();
        fails(&probe)
    });
    current.mc_steps = mc_steps;
    let violations = current.try_run_and_check(opts).unwrap_or_default();
    ShrinkResult {
        plan: current,
        violations,
        runs,
    }
}

/// ddmin-style greedy chunk removal: repeatedly bisects the list into
/// chunks, dropping any chunk whose removal keeps the predicate true, until
/// single-element granularity makes no further progress (or the run budget
/// is exhausted).
///
/// With `jobs > 1` the candidate removals at positions `i, i+chunk, …` are
/// probed *speculatively* in parallel, but acceptance replays the
/// single-thread algorithm exactly: the first (lowest-position) failing
/// candidate is taken, probes after it are discarded **without counting
/// toward `max_runs`** (the sequential algorithm would never have run them
/// — it restarts from the accepted state), and probes before it count one
/// each. Result and final `runs` are therefore identical for every `jobs`.
fn ddmin<T: Clone + Send + Sync>(
    items: &[T],
    runs: &mut usize,
    max_runs: usize,
    jobs: usize,
    still_fails: impl Fn(&[T]) -> bool + Sync,
) -> Vec<T> {
    let probe = |cur: &[T], start: usize, chunk: usize| -> bool {
        let hi = (start + chunk).min(cur.len());
        let mut cand = cur.to_vec();
        cand.drain(start..hi);
        still_fails(&cand)
    };
    let mut cur: Vec<T> = items.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < cur.len() {
            if *runs >= max_runs {
                return cur;
            }
            // Speculative batch: the next up-to-`jobs` removal positions
            // the sequential scan would try (budget-capped).
            let width = jobs.max(1).min(max_runs - *runs);
            let mut starts = Vec::with_capacity(width);
            let mut j = i;
            while j < cur.len() && starts.len() < width {
                starts.push(j);
                j += chunk;
            }
            let results: Vec<bool> = if starts.len() == 1 {
                vec![probe(&cur, starts[0], chunk)]
            } else {
                std::thread::scope(|s| {
                    let cur = &cur;
                    let probe = &probe;
                    let handles: Vec<_> = starts
                        .iter()
                        .map(|&st| s.spawn(move || probe(cur, st, chunk)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("ddmin probe panicked"))
                        .collect()
                })
            };
            let mut accepted = None;
            for (k, failed) in results.iter().enumerate() {
                *runs += 1;
                if *failed {
                    accepted = Some(k);
                    break;
                }
                if *runs >= max_runs {
                    break;
                }
            }
            match accepted {
                Some(k) => {
                    let st = starts[k];
                    let hi = (st + chunk).min(cur.len());
                    cur.drain(st..hi);
                    removed_any = true;
                    i = st;
                }
                None => {
                    i = starts.last().expect("nonempty batch") + chunk;
                }
            }
        }
        if chunk == 1 {
            if !removed_any {
                return cur;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
        if cur.is_empty() {
            return cur;
        }
    }
}

/// Counts the tagged deliveries in a history (sweep progress metric).
#[must_use]
pub fn delivery_count(h: &History) -> usize {
    h.events
        .values()
        .flatten()
        .filter(|e| matches!(e, HistoryEvent::Delivered { mid: Some(_), .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_generation_is_deterministic() {
        let a = ChaosScenario::new(17).plan();
        let b = ChaosScenario::new(17).plan();
        assert_eq!(a, b);
        assert_ne!(a, ChaosScenario::new(18).plan());
    }

    /// The churn family is deterministic, always schedules faults, and
    /// leans on crashes/departures: across a seed window the majority
    /// of scheduled faults are membership churn, and at least one plan
    /// exceeds the classic 2-crash cap while still leaving 2 survivors.
    #[test]
    fn churn_family_is_crash_heavy_and_bounded() {
        assert_eq!(
            ChaosScenario::churn(9).plan(),
            ChaosScenario::churn(9).plan()
        );
        let mut churn_faults = 0u32;
        let mut other_faults = 0u32;
        let mut beyond_classic_cap = false;
        for seed in 0..40 {
            let plan = ChaosScenario::churn(seed).plan();
            assert!(!plan.faults.is_empty(), "seed {seed} scheduled no faults");
            let crashes = plan
                .faults
                .iter()
                .filter(|f| matches!(f.op, FaultOp::Crash { .. }))
                .count();
            assert!(
                (crashes as u32) <= plan.n.saturating_sub(2),
                "seed {seed} leaves fewer than 2 survivors"
            );
            if crashes > 2 {
                beyond_classic_cap = true;
            }
            for f in &plan.faults {
                match f.op {
                    FaultOp::Crash { .. } | FaultOp::Depart { .. } => churn_faults += 1,
                    FaultOp::Partition { .. } | FaultOp::Latency { .. } => other_faults += 1,
                    FaultOp::Heal | FaultOp::WanLink { .. } | FaultOp::WanUplink { .. } => {}
                }
            }
        }
        assert!(
            churn_faults > other_faults,
            "churn family should be membership-heavy ({churn_faults} vs {other_faults})"
        );
        assert!(
            beyond_classic_cap,
            "crash budget never exceeded the old cap"
        );
    }

    /// Adding the churn knob must not perturb the classic fleet's draw
    /// sequence: a non-churn plan keeps replaying to the same history.
    #[test]
    fn churn_off_keeps_classic_plans_identical() {
        let classic = ChaosScenario::new(17);
        let with_flag_field = ChaosScenario {
            churn: false,
            ..ChaosScenario::new(17)
        };
        assert_eq!(classic.plan(), with_flag_field.plan());
    }

    /// Churn plans run to completion and their histories pass the
    /// checker like any other generated plan.
    #[test]
    fn churn_plans_run_green() {
        for seed in [1u64, 8, 21] {
            let plan = ChaosScenario::churn(seed).plan();
            let violations = plan
                .try_run_and_check(&plan.check_options())
                .expect("engine survives churn plans");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    /// Regression pins for counterexamples the chaos fleet shrank.
    ///
    /// Churn seed 1401: a detection adopted while an earlier (depart)
    /// install was still queued parked in `asym_awaiting`; executing that
    /// install handed the sequencer role to the very process the parked
    /// detection named — dead, so its `ViewCut` never came and the group
    /// wedged with the failed member in the view forever, freezing the
    /// merged cross-group delivery order of every overlapping member
    /// (`reconcile_asym_awaiting` now falls back to the number-barrier
    /// install and advances `D_{x,i}` to the agreed bound).
    ///
    /// WAN churn seed 1098: trunk latency delayed a member's first nulls
    /// past a loss cut, so one partition side confirmed an exclusion and
    /// closed the shared view with a different delivery set — legal under
    /// the paper (agreement holds within a connected component), which
    /// the checker's VC3 now recognises via its bracket-scoped
    /// adopted-detection exemption.
    #[test]
    fn chaos_fleet_regressions_stay_green() {
        let plan = ChaosScenario::churn(1401).plan();
        let violations = plan
            .try_run_and_check(&plan.check_options())
            .expect("engine survives churn seed 1401");
        assert!(violations.is_empty(), "churn 1401: {violations:?}");

        let mut scenario = ChaosScenario::churn(1098);
        scenario.wan = true;
        let plan = scenario.plan();
        let violations = plan
            .try_run_and_check(&plan.check_options())
            .expect("engine survives WAN churn seed 1098");
        assert!(violations.is_empty(), "wan churn 1098: {violations:?}");
    }

    /// The WAN seam must not perturb the default transport: these hashes
    /// were pinned before the bandwidth model existed, and every classic
    /// and churn seed must keep replaying to them byte-for-byte.
    #[test]
    fn classic_and_churn_seed_hashes_are_pinned() {
        let classic: [(u64, u64); 6] = [
            (0, 0x15a2_1478_c55a_2c21),
            (3, 0x1d04_5964_a1e4_8bf8),
            (7, 0x5ad8_aaf5_05d1_0e4c),
            (17, 0x4099_db2c_7043_1006),
            (42, 0xde11_aaa5_36ba_6546),
            (99, 0x40ac_2bdb_0f72_b0b6),
        ];
        for (seed, want) in classic {
            let got = history_hash(&ChaosScenario::new(seed).plan().run().history());
            assert_eq!(got, want, "classic seed {seed} drifted");
        }
        let churn: [(u64, u64); 3] = [
            (1, 0x2efc_12b8_a2e8_088e),
            (8, 0x0cf8_58f3_8d83_c57b),
            (21, 0x8845_77a1_d66a_37cf),
        ];
        for (seed, want) in churn {
            let got = history_hash(&ChaosScenario::churn(seed).plan().run().history());
            assert_eq!(got, want, "churn seed {seed} drifted");
        }
    }

    #[test]
    fn wan_family_is_deterministic_and_multi_region() {
        assert_eq!(ChaosScenario::wan(5).plan(), ChaosScenario::wan(5).plan());
        for seed in 0..20u64 {
            let plan = ChaosScenario::wan(seed).plan();
            let ws = plan.wan.as_ref().expect("wan family always has a spec");
            assert_eq!(ws.nodes.len(), plan.n as usize);
            let regions: std::collections::BTreeSet<u32> =
                ws.nodes.iter().map(|n| n.region).collect();
            assert!(!ws.routes.is_empty());
            for r in &ws.routes {
                assert!(r.lo_us <= r.hi_us);
                assert!(r.capacity_bps > 0);
            }
            // A congestion window always restores what it degraded.
            let wan_faults = plan
                .faults
                .iter()
                .filter(|f| matches!(f.op, FaultOp::WanLink { .. } | FaultOp::WanUplink { .. }))
                .count();
            assert!(wan_faults >= 2 && wan_faults % 2 == 0, "seed {seed}");
            let _ = regions;
        }
    }

    /// Congested-but-healthy WAN runs: fair-share queueing, congestion
    /// windows and reorder holds must all stay inside the checker's
    /// envelope — suspicion may rise, exclusion may not happen falsely.
    #[test]
    fn wan_plans_run_green() {
        for seed in [0u64, 2, 5, 13] {
            let plan = ChaosScenario::wan(seed).plan();
            let violations = plan
                .try_run_and_check(&plan.check_options())
                .expect("engine survives WAN plans");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn wan_plan_replays_to_identical_history_hash() {
        let plan = ChaosScenario::wan(6).plan();
        let h1 = history_hash(&plan.run().history());
        let h2 = history_hash(&plan.run().history());
        assert_eq!(h1, h2, "same WAN plan must replay bit-identically");
    }

    #[test]
    fn wan_script_roundtrip_preserves_plan() {
        for seed in [1u64, 4, 9] {
            let plan = ChaosScenario::wan(seed).plan();
            let script = plan.to_script(None);
            let (parsed, _) = ChaosPlan::parse_script(&script).expect("parses");
            assert_eq!(parsed, plan, "seed {seed}");
        }
    }

    #[test]
    fn parse_rejects_invalid_wan_directives() {
        let base = "newtop-chaos v1\nseed 1\nn 3\nhorizon-us 10\n\
                    group 1 symmetric omega-us 5 big-omega-us 9 members 1,2,3\n";
        let inverted =
            format!("{base}wan dup-pm 0 reorder-pm 0 hold-us 1\nwan-route 0 1 500 100 1000\n");
        assert!(ChaosPlan::parse_script(&inverted)
            .unwrap_err()
            .contains("inverted latency bounds"));
        let zero_cap = format!("{base}wan dup-pm 0 reorder-pm 0 hold-us 1\nwan-node 1 0 0\n");
        assert!(ChaosPlan::parse_script(&zero_cap)
            .unwrap_err()
            .contains("nonzero"));
        let orphan = format!("{base}wan-node 1 0 1000\n");
        assert!(ChaosPlan::parse_script(&orphan)
            .unwrap_err()
            .contains("before wan"));
        let inverted_fault = format!("{base}fault 5 latency uniform 900 100\n");
        assert!(ChaosPlan::parse_script(&inverted_fault)
            .unwrap_err()
            .contains("inverted latency bounds"));
        let bad_pm = format!("{base}wan dup-pm 1001 reorder-pm 0 hold-us 1\n");
        assert!(ChaosPlan::parse_script(&bad_pm)
            .unwrap_err()
            .contains("per-mille"));
    }

    #[test]
    fn plan_replays_to_identical_history_hash() {
        let plan = ChaosScenario::new(3).plan();
        let h1 = history_hash(&plan.run().history());
        let h2 = history_hash(&plan.run().history());
        assert_eq!(h1, h2, "same plan must replay bit-identically");
    }

    #[test]
    fn script_roundtrip_preserves_plan() {
        for seed in [0u64, 5, 11, 23, 42] {
            let plan = ChaosScenario::new(seed).plan();
            let script = plan.to_script(Some(0xDEAD_BEEF));
            let (parsed, hash) = ChaosPlan::parse_script(&script).expect("parses");
            assert_eq!(parsed, plan, "seed {seed}");
            assert_eq!(hash, Some(0xDEAD_BEEF));
        }
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert!(ChaosPlan::parse_script("").is_err());
        assert!(ChaosPlan::parse_script("newtop-chaos v2\n").is_err());
        let bad = "newtop-chaos v1\nseed 1\nn 3\nhorizon-us 10\nfrobnicate\n";
        assert!(ChaosPlan::parse_script(bad).unwrap_err().contains("line 5"));
        let no_groups = "newtop-chaos v1\nseed 1\nn 3\nhorizon-us 10\n";
        assert!(ChaosPlan::parse_script(no_groups).is_err());
    }

    #[test]
    fn parse_errors_quote_the_offending_line() {
        let bad = "newtop-chaos v1\nseed 1\nn 3\nhorizon-us 10\nfrobnicate\n";
        let e = ChaosPlan::parse_script(bad).unwrap_err();
        assert!(e.contains("line 5") && e.contains("`frobnicate`"), "{e}");
        let bad_mc = "newtop-chaos v1\nn 3\nhorizon-us 10\n\
                      group 1 symmetric omega-us 5 big-omega-us 9 members 1,2,3\n\
                      mc-step conjure 1\n";
        let e = ChaosPlan::parse_script(bad_mc).unwrap_err();
        assert!(
            e.contains("unknown mc-step") && e.contains("conjure"),
            "{e}"
        );
    }

    fn tiny_mc_plan() -> ChaosPlan {
        ChaosPlan {
            seed: 1,
            n: 3,
            topology: vec![GroupSpec {
                group: GroupId(1),
                mode: OrderMode::Symmetric,
                omega_us: 5_000,
                big_omega_us: 10_000,
                members: vec![1, 2, 3],
            }],
            sends: Vec::new(),
            faults: Vec::new(),
            wan: None,
            mc_steps: vec![
                McStep::Send {
                    from: 1,
                    group: GroupId(1),
                    mid: 7,
                },
                McStep::Deliver { src: 1, dst: 2 },
                McStep::Deliver { src: 1, dst: 3 },
                McStep::Wake { p: 2 },
                McStep::Crash { victim: 3 },
            ],
            horizon_us: 1,
        }
    }

    #[test]
    fn mc_script_roundtrips_and_replays_deterministically() {
        let plan = tiny_mc_plan();
        let script = plan.to_script(None);
        let (parsed, _) = ChaosPlan::parse_script(&script).expect("parses");
        assert_eq!(parsed, plan);
        let h1 = history_hash(&plan.run().history());
        let h2 = history_hash(&parsed.run().history());
        assert_eq!(h1, h2, "mc schedules must replay bit-identically");
        // Bounded prefix, not a quiescent run: only safety is asserted.
        assert!(!plan.check_options().liveness);
    }

    #[test]
    fn mc_schedule_skips_unfireable_steps() {
        let mut plan = tiny_mc_plan();
        // A link with nothing in flight and an already-crashed sender: both
        // must be no-ops, as ddmin shrink candidates rely on.
        plan.mc_steps.push(McStep::Deliver { src: 2, dst: 1 });
        plan.mc_steps.push(McStep::Send {
            from: 3,
            group: GroupId(1),
            mid: 8,
        });
        let v = plan.run_and_check(&plan.check_options());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn small_seed_band_passes_checker() {
        for seed in 0..8u64 {
            let plan = ChaosScenario::new(seed).plan();
            let v = plan.run_and_check(&plan.check_options());
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn shrink_reduces_a_fabricated_failure() {
        // A plan whose "failure" is simply delivering anything at all —
        // shrink must strip it to a minimal core while runs stay bounded.
        let plan = ChaosScenario::new(2).plan();
        let opts = CheckOptions::default();
        let h = plan.run().history();
        assert!(delivery_count(&h) > 0);
        let mut runs = 0usize;
        let shrunk = ddmin(&plan.sends, &mut runs, 500, 1, |cand| {
            let mut probe = plan.clone();
            probe.sends = cand.to_vec();
            delivery_count(&probe.run().history()) > 0
        });
        assert_eq!(shrunk.len(), 1, "one send suffices to deliver something");
        let _ = opts;
    }

    #[test]
    fn parallel_ddmin_matches_sequential_exactly() {
        // A deterministic predicate with several local minima: the
        // candidate "still fails" while it keeps both sentinel values.
        let items: Vec<u32> = (0..37).collect();
        let pred = |cand: &[u32]| cand.contains(&5) && cand.contains(&29);
        let run = |jobs: usize, max_runs: usize| {
            let mut runs = 0usize;
            let out = ddmin(&items, &mut runs, max_runs, jobs, pred);
            (out, runs)
        };
        for max_runs in [7, 50, 10_000] {
            let base = run(1, max_runs);
            for jobs in [2, 3, 8] {
                assert_eq!(
                    run(jobs, max_runs),
                    base,
                    "jobs={jobs} max_runs={max_runs} must replay the sequential ddmin"
                );
            }
        }
        assert_eq!(run(1, 10_000).0, vec![5, 29]);
    }
}
