//! Control plane for real multi-process clusters: the `newtop-exp serve`
//! node process and the [`RemoteCluster`] client the load generator
//! drives it with.
//!
//! A TCP cluster splits into two planes. The **data plane** is the
//! runtime's own peer protocol (`newtop_runtime::TcpConfig`): every
//! `serve` process speaks the batched frame format to every other over
//! reliable resumable links. The **control plane** is this module: each
//! `serve` process also listens on a control address where a client —
//! `newtop-exp load --host tcp`, or a test — submits multicasts for the
//! nodes that process hosts, subscribes to their outputs, samples wire
//! statistics and requests shutdown.
//!
//! Control connections carry varint-length-prefixed records; the first
//! payload byte is the record tag. Multicast verdicts are returned in
//! submission order per connection, so a pipelined client can match
//! them FIFO. Delivery records preserve every field of the engine's
//! [`Delivery`]; view-change records carry the installed member set
//! (the client rebuilds a `View` from it — sequence numbers are not
//! preserved across the control plane, which only ever counts these).
//!
//! # Topology
//!
//! All processes agree on the cluster shape by construction: node `i`
//! of `N` lives on peer [`peer_of`]`(i, N, P)` — contiguous blocks, so
//! peers own cache-friendly ranges — while group `g` takes every node
//! with `(i-1) % groups == g`, exactly like the in-process load
//! generator. Round-robin groups over block-assigned nodes guarantee
//! that every group spans every peer: all application traffic crosses
//! real sockets.

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use newtop_core::Delivery;
use newtop_runtime::{Cluster, ClusterConfig, Output, RunningCluster, TcpConfig, WireStats};
use newtop_types::wire::put_varint;
use newtop_types::{
    GroupConfig, GroupId, Msn, OrderMode, ProcessId, SendError, SignedView, Span, SuspicionMode,
    View, ViewSeq,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which peer hosts node `i` (1-based) of `nodes`, across `peers`
/// processes: contiguous blocks whose sizes differ by at most one.
#[must_use]
pub fn peer_of(i: u32, nodes: u32, peers: u32) -> u32 {
    assert!(i >= 1 && i <= nodes && peers >= 1, "peer_of out of range");
    ((i - 1) * peers) / nodes
}

/// Members of group `g` (0-based): every node with `(i-1) % groups == g`,
/// the same round-robin assignment the in-process load generator uses.
#[must_use]
pub fn members_of(g: u32, nodes: u32, groups: u32) -> Vec<ProcessId> {
    (1..=nodes)
        .filter(|i| (i - 1) % groups == g)
        .map(ProcessId)
        .collect()
}

/// Everything one `serve` process needs to know about the cluster.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Protocol participants cluster-wide (numbered 1..=nodes).
    pub nodes: u32,
    /// Groups; node `i` joins group `(i-1) % groups`.
    pub groups: u32,
    /// Data-plane addresses of every peer, cluster order.
    pub peers: Vec<SocketAddr>,
    /// Control-plane addresses of every peer, same order.
    pub ctrl: Vec<SocketAddr>,
    /// This process's index into both address lists.
    pub me: usize,
    /// Ordering variant every group runs.
    pub mode: OrderMode,
    /// Time-silence interval ω.
    pub omega: Span,
    /// Suspicion timeout Ω.
    pub big_omega: Span,
    /// Failure-suspicion mode every group runs: fixed Ω silence or the
    /// accrual detector.
    pub suspicion: SuspicionMode,
    /// Whether to bootstrap the initial groups at startup. A process
    /// restarted after a crash starts with `false`: the survivors
    /// excluded its old incarnation's nodes, so it comes up with no
    /// group state and re-enters through the §5.3 formation path (a
    /// client's form op, typically issued by the supervisor).
    pub bootstrap: bool,
    /// Host knobs (shards, egress batching) for the local shard set.
    pub cluster: ClusterConfig,
}

impl ServeConfig {
    /// A config with load-generator-friendly protocol defaults.
    #[must_use]
    pub fn new(
        nodes: u32,
        groups: u32,
        peers: Vec<SocketAddr>,
        ctrl: Vec<SocketAddr>,
        me: usize,
    ) -> ServeConfig {
        ServeConfig {
            nodes,
            groups,
            peers,
            ctrl,
            me,
            mode: OrderMode::Symmetric,
            omega: Span::from_millis(25),
            big_omega: Span::from_secs(10),
            suspicion: SuspicionMode::FixedOmega,
            bootstrap: true,
            cluster: ClusterConfig::new(),
        }
    }

    /// The group configuration every group of this cluster runs.
    #[must_use]
    pub fn group_config(&self) -> GroupConfig {
        GroupConfig::new(self.mode)
            .with_omega(self.omega)
            .with_big_omega(self.big_omega)
            .with_suspicion(self.suspicion)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn npeers(&self) -> u32 {
        self.peers.len() as u32
    }

    fn hosted(&self) -> Vec<ProcessId> {
        #[allow(clippy::cast_possible_truncation)]
        let me = self.me as u32;
        (1..=self.nodes)
            .filter(|&i| peer_of(i, self.nodes, self.npeers()) == me)
            .map(ProcessId)
            .collect()
    }

    fn owners(&self) -> Vec<(ProcessId, u32)> {
        (1..=self.nodes)
            .map(|i| (ProcessId(i), peer_of(i, self.nodes, self.npeers())))
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        if self.peers.is_empty() || self.peers.len() != self.ctrl.len() {
            return Err("need matching non-empty peer and ctrl address lists".into());
        }
        if self.me >= self.peers.len() {
            return Err(format!(
                "peer index {} out of range ({} peers)",
                self.me,
                self.peers.len()
            ));
        }
        if self.nodes == 0 || self.groups == 0 || self.groups > self.nodes {
            return Err("need 1 <= groups <= nodes".into());
        }
        Ok(())
    }
}

// Control record tags. Client→server ops:
const OP_MULTICAST: u8 = 0x01;
const OP_SUBSCRIBE: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_FORM: u8 = 0x05;
// Server→client records:
const REC_VERDICT: u8 = 0x81;
const REC_DELIVERY: u8 = 0x82;
const REC_VIEW: u8 = 0x83;
const REC_STATS: u8 = 0x84;
const REC_BYE: u8 = 0x85;
const REC_ACTIVE: u8 = 0x86;

/// Control records may carry an application payload but never a frame
/// batch; 16 MiB is far above any legitimate record.
const MAX_RECORD: u64 = 16 * 1024 * 1024;

/// Incremental varint-length-prefixed record parser for the control
/// stream (the ctrl-plane sibling of the wire `FrameDecoder`).
struct RecordDecoder {
    buf: Vec<u8>,
}

impl RecordDecoder {
    fn new() -> RecordDecoder {
        RecordDecoder { buf: Vec::new() }
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete record payload, if one is buffered.
    fn next_record(&mut self) -> Result<Option<Vec<u8>>, String> {
        let mut len: u64 = 0;
        let mut shift = 0u32;
        let mut used = 0usize;
        loop {
            let Some(&b) = self.buf.get(used) else {
                return Ok(None);
            };
            used += 1;
            len |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 63 {
                return Err("control record length varint overflow".into());
            }
        }
        if len > MAX_RECORD {
            return Err(format!("control record of {len} bytes exceeds the cap"));
        }
        #[allow(clippy::cast_possible_truncation)]
        let body_len = len as usize;
        if self.buf.len() < used + body_len {
            return Ok(None);
        }
        let record = self.buf[used..used + body_len].to_vec();
        self.buf.drain(..used + body_len);
        Ok(Some(record))
    }
}

/// Writes one length-prefixed record under the connection's write lock.
fn write_record(writer: &Mutex<TcpStream>, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = BytesMut::with_capacity(payload.len() + 5);
    put_varint(&mut buf, payload.len() as u64);
    buf.put_slice(payload);
    let mut w = writer.lock().expect("ctrl write lock");
    w.write_all(&buf)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn u32(&mut self) -> Result<u32, String> {
        let raw: [u8; 4] = self
            .buf
            .get(self.at..self.at + 4)
            .ok_or("truncated control record")?
            .try_into()
            .expect("sized slice");
        self.at += 4;
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let raw: [u8; 8] = self
            .buf
            .get(self.at..self.at + 8)
            .ok_or("truncated control record")?
            .try_into()
            .expect("sized slice");
        self.at += 8;
        Ok(u64::from_le_bytes(raw))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.at.min(self.buf.len())..]
    }
}

fn encode_stats(stats: &WireStats, shards: u64) -> Vec<u8> {
    let mut rec = vec![REC_STATS];
    put_u64(&mut rec, stats.frames);
    put_u64(&mut rec, stats.envelopes);
    put_u64(&mut rec, stats.bytes);
    put_u64(&mut rec, stats.null_frames);
    put_u64(&mut rec, stats.suppressed_nulls);
    for bucket in &stats.occupancy {
        put_u64(&mut rec, *bucket);
    }
    put_u64(&mut rec, stats.reconnects);
    put_u64(&mut rec, stats.dropped_dead);
    put_u64(&mut rec, stats.handshake_rejects);
    put_u64(&mut rec, stats.shed_multicasts);
    put_u64(&mut rec, shards);
    rec
}

fn decode_stats(body: &[u8]) -> Result<(WireStats, u64), String> {
    let mut c = Cursor::new(body);
    let mut stats = WireStats {
        frames: c.u64()?,
        envelopes: c.u64()?,
        bytes: c.u64()?,
        null_frames: c.u64()?,
        suppressed_nulls: c.u64()?,
        ..WireStats::default()
    };
    for bucket in &mut stats.occupancy {
        *bucket = c.u64()?;
    }
    stats.reconnects = c.u64()?;
    stats.dropped_dead = c.u64()?;
    stats.handshake_rejects = c.u64()?;
    stats.shed_multicasts = c.u64()?;
    let shards = c.u64()?;
    Ok((stats, shards))
}

// ---------------------------------------------------------------------
// Server side: `newtop-exp serve`.
// ---------------------------------------------------------------------

/// Runs one peer process of a TCP cluster: hosts its block of nodes on
/// the sharded runtime, joins the data plane, and serves control
/// connections until a client sends the shutdown op. Returns after the
/// cluster is fully torn down.
///
/// # Errors
///
/// Invalid topology, a bind failure on either plane, or a group
/// bootstrap rejection — all as one readable string.
pub fn serve(cfg: &ServeConfig) -> Result<(), String> {
    cfg.validate()?;
    let mut cluster = Cluster::with_config(cfg.cluster);
    let hosted = cfg.hosted();
    for &node in &hosted {
        cluster.add_process(node);
    }
    let group_cfg = cfg.group_config();
    if cfg.bootstrap {
        for g in 0..cfg.groups {
            cluster
                .bootstrap_group_local(
                    GroupId(g + 1),
                    members_of(g, cfg.nodes, cfg.groups),
                    group_cfg,
                )
                .map_err(|e| format!("bootstrap group {}: {e}", g + 1))?;
        }
    }
    let mut tcp = TcpConfig::new(cfg.peers.clone(), cfg.me, cfg.owners());
    if !cfg.bootstrap {
        // A rejoining process binds the address its old incarnation just
        // vacated; ride out any lingering TIME_WAIT sockets.
        tcp.bind_retry = Duration::from_secs(10);
    }
    let running = Arc::new(
        cluster
            .start_tcp(tcp)
            .map_err(|e| format!("bind data plane {}: {e}", cfg.peers[cfg.me]))?,
    );
    let listener = TcpListener::bind(cfg.ctrl[cfg.me])
        .map_err(|e| format!("bind control plane {}: {e}", cfg.ctrl[cfg.me]))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("control listener: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _)) => {
                let running = Arc::clone(&running);
                let hosted = hosted.clone();
                let stop = Arc::clone(&stop);
                handlers.push(
                    std::thread::Builder::new()
                        .name("newtop-ctrl".into())
                        .spawn(move || ctrl_conn_main(&running, &hosted, group_cfg, conn, &stop))
                        .expect("spawn ctrl handler"),
                );
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    match Arc::try_unwrap(running) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => return Err("a control handler leaked the cluster handle".into()),
    }
    Ok(())
}

/// Serves one control connection: ops in, verdicts + subscribed
/// outputs out. A shutdown op flips the server-wide stop flag.
fn ctrl_conn_main(
    running: &Arc<RunningCluster>,
    hosted: &[ProcessId],
    group_cfg: GroupConfig,
    conn: TcpStream,
    stop: &Arc<AtomicBool>,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = Arc::new(Mutex::new(match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    }));
    let mut reader = conn;
    let mut dec = RecordDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    let mut subscribed = false;
    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match reader.read(&mut buf) {
            Ok(0) => break, // client gone; the cluster keeps running
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    let record = match dec.next_record() {
                        Ok(Some(r)) => r,
                        Ok(None) => break,
                        Err(_) => break 'conn, // malformed client
                    };
                    if !handle_op(
                        running,
                        hosted,
                        group_cfg,
                        &writer,
                        stop,
                        &mut forwarders,
                        &mut subscribed,
                        &record,
                    ) {
                        break 'conn;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    // Unblock the forwarders (they poll both flags) and reap them.
    for f in forwarders {
        let _ = f.join();
    }
}

/// Dispatches one control op; `false` ends the connection.
#[allow(clippy::too_many_arguments)]
fn handle_op(
    running: &Arc<RunningCluster>,
    hosted: &[ProcessId],
    group_cfg: GroupConfig,
    writer: &Arc<Mutex<TcpStream>>,
    stop: &Arc<AtomicBool>,
    forwarders: &mut Vec<JoinHandle<()>>,
    subscribed: &mut bool,
    record: &[u8],
) -> bool {
    match record.first().copied() {
        Some(OP_MULTICAST) => {
            let verdict = (|| -> Result<Result<(), SendError>, String> {
                let mut c = Cursor::new(&record[1..]);
                let node = ProcessId(c.u32()?);
                let group = GroupId(c.u32()?);
                let payload = Bytes::from(c.rest().to_vec());
                Ok(match running.node(node) {
                    Some(n) => n.multicast(group, payload),
                    None => Err(SendError::NotMember { group }),
                })
            })();
            let mut rec = vec![REC_VERDICT];
            match verdict {
                Ok(Ok(())) => rec.push(0),
                // Shed at the host's admission boundary: a distinct tag,
                // so the client can count backpressure separately from
                // membership refusals.
                Ok(Err(e @ SendError::Overloaded { .. })) => {
                    rec.push(2);
                    rec.extend_from_slice(e.to_string().as_bytes());
                }
                Ok(Err(e)) => {
                    rec.push(1);
                    rec.extend_from_slice(e.to_string().as_bytes());
                }
                Err(e) => {
                    rec.push(1);
                    rec.extend_from_slice(e.as_bytes());
                }
            }
            write_record(writer, &rec).is_ok()
        }
        Some(OP_FORM) => {
            // §5.3 formation, driven over the control plane: the named
            // hosted node acts as initiator; invitees (on any peer,
            // including a freshly rejoined one) vote over the data
            // plane. This is how crash recovery re-admits a restarted
            // process — a *new* group with fresh identifiers (§3), not
            // a same-id re-entry.
            let verdict = (|| -> Result<Result<(), String>, String> {
                let mut c = Cursor::new(&record[1..]);
                let initiator = ProcessId(c.u32()?);
                let group = GroupId(c.u32()?);
                let count = c.u32()?;
                let mut members = Vec::new();
                for _ in 0..count {
                    members.push(ProcessId(c.u32()?));
                }
                Ok(match running.node(initiator) {
                    Some(n) => n
                        .initiate_group(group, members, group_cfg)
                        .map_err(|e| e.to_string()),
                    None => Err(format!("initiator {initiator} is not hosted here")),
                })
            })();
            let mut rec = vec![REC_VERDICT];
            match verdict {
                Ok(Ok(())) => rec.push(0),
                Ok(Err(e)) | Err(e) => {
                    rec.push(1);
                    rec.extend_from_slice(e.as_bytes());
                }
            }
            write_record(writer, &rec).is_ok()
        }
        Some(OP_SUBSCRIBE) => {
            if !*subscribed {
                *subscribed = true;
                for &node in hosted {
                    let rx = running.node(node).expect("hosted node").outputs().clone();
                    let writer = Arc::clone(writer);
                    let stop = Arc::clone(stop);
                    forwarders.push(
                        std::thread::Builder::new()
                            .name(format!("newtop-fwd-{}", node.0))
                            .spawn(move || forward_outputs(node, &rx, &writer, &stop))
                            .expect("spawn output forwarder"),
                    );
                }
            }
            true
        }
        Some(OP_STATS) => {
            let rec = encode_stats(&running.wire_stats(), running.shard_count() as u64);
            write_record(writer, &rec).is_ok()
        }
        Some(OP_SHUTDOWN) => {
            let _ = write_record(writer, &[REC_BYE]);
            stop.store(true, Ordering::Relaxed);
            false
        }
        _ => false, // unknown op: drop the connection
    }
}

/// Streams one hosted node's engine outputs to the subscribed client.
fn forward_outputs(
    node: ProcessId,
    rx: &Receiver<Output>,
    writer: &Mutex<TcpStream>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        let out = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(out) => out,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        let rec = match out {
            Output::Delivery(d) => {
                let mut rec = vec![REC_DELIVERY];
                put_u32(&mut rec, node.0);
                put_u32(&mut rec, d.group.0);
                put_u32(&mut rec, d.origin.0);
                put_u64(&mut rec, d.c.0);
                put_u32(&mut rec, d.view_seq.0);
                rec.extend_from_slice(&d.payload);
                rec
            }
            Output::ViewChange { group, view, .. } => {
                let mut rec = vec![REC_VIEW];
                put_u32(&mut rec, node.0);
                put_u32(&mut rec, group.0);
                #[allow(clippy::cast_possible_truncation)]
                put_u32(&mut rec, view.len() as u32);
                for m in view.iter() {
                    put_u32(&mut rec, m.0);
                }
                rec
            }
            Output::GroupActive { group, view } => {
                let mut rec = vec![REC_ACTIVE];
                put_u32(&mut rec, node.0);
                put_u32(&mut rec, group.0);
                #[allow(clippy::cast_possible_truncation)]
                put_u32(&mut rec, view.len() as u32);
                for m in view.iter() {
                    put_u32(&mut rec, m.0);
                }
                rec
            }
            // Failed formations and trace events stay local; the control
            // plane forwards what the generator and supervisor consume.
            _ => continue,
        };
        if write_record(writer, &rec).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Client side: RemoteCluster.
// ---------------------------------------------------------------------

/// Reply slots a control connection is still owed, in submission order.
#[derive(Default)]
struct PendingReplies {
    verdicts: Mutex<VecDeque<Sender<Result<(), SendError>>>>,
    stats: Mutex<VecDeque<Sender<(WireStats, u64)>>>,
    byes: Mutex<VecDeque<Sender<()>>>,
}

struct CtrlPeer {
    writer: Mutex<TcpStream>,
    pending: Arc<PendingReplies>,
    reader: Option<JoinHandle<()>>,
}

/// Client handle to a running multi-process cluster: one control
/// connection per `serve` process, presenting the same surface the load
/// generator uses against an in-process host.
pub struct RemoteCluster {
    peers: Vec<CtrlPeer>,
    /// Node `i` (1-based) lives on `peers[home[i-1]]`.
    home: Vec<usize>,
    outputs: Vec<Receiver<Output>>,
    /// Kept for re-subscribing after a peer reconnect.
    txs: Vec<Sender<Output>>,
    shards: AtomicU64,
}

/// Dials one peer's control address (retrying until `deadline`),
/// subscribes, and spawns its record reader.
fn dial_ctrl(
    addr: SocketAddr,
    deadline: Instant,
    txs: &[Sender<Output>],
) -> std::io::Result<CtrlPeer> {
    let conn = loop {
        match TcpStream::connect(addr) {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = conn.set_nodelay(true);
    let writer = Mutex::new(conn.try_clone()?);
    write_record(&writer, &[OP_SUBSCRIBE])
        .map_err(|e| std::io::Error::new(e.kind(), format!("subscribe {addr}: {e}")))?;
    let pending = Arc::new(PendingReplies::default());
    let reader = {
        let pending = Arc::clone(&pending);
        let txs = txs.to_vec();
        std::thread::Builder::new()
            .name("newtop-ctrl-rx".into())
            .spawn(move || ctrl_reader_main(conn, &pending, &txs))
            .expect("spawn ctrl reader")
    };
    Ok(CtrlPeer {
        writer,
        pending,
        reader: Some(reader),
    })
}

impl RemoteCluster {
    /// Connects to every peer's control address and subscribes to its
    /// hosted nodes' outputs. Peers still binding are retried for
    /// `timeout` before the whole connect fails.
    ///
    /// # Errors
    ///
    /// The last connection error of a peer that never became reachable,
    /// or a handshake write failure.
    pub fn connect(
        ctrl: &[SocketAddr],
        nodes: u32,
        timeout: Duration,
    ) -> std::io::Result<RemoteCluster> {
        if ctrl.is_empty() || nodes == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "need at least one control address and one node",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        let npeers = ctrl.len() as u32;
        let mut txs: Vec<Sender<Output>> = Vec::new();
        let mut outputs: Vec<Receiver<Output>> = Vec::new();
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            txs.push(tx);
            outputs.push(rx);
        }
        let home: Vec<usize> = (1..=nodes)
            .map(|i| peer_of(i, nodes, npeers) as usize)
            .collect();
        let deadline = Instant::now() + timeout;
        let mut peers = Vec::new();
        for &addr in ctrl {
            peers.push(dial_ctrl(addr, deadline, &txs)?);
        }
        Ok(RemoteCluster {
            peers,
            home,
            outputs,
            txs,
            shards: AtomicU64::new(0),
        })
    }

    /// Re-establishes the control connection to peer `peer` at `addr`
    /// after its process restarted, re-subscribing to its hosted nodes'
    /// outputs. The old connection's reader is reaped; verdicts it
    /// still owed are abandoned.
    ///
    /// # Errors
    ///
    /// The last connection error if the peer never became reachable
    /// within `timeout`.
    pub fn reconnect_peer(
        &mut self,
        peer: usize,
        addr: SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<()> {
        if peer >= self.peers.len() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "peer index {peer} out of range ({} peers)",
                    self.peers.len()
                ),
            ));
        }
        {
            let old = &mut self.peers[peer];
            let _ = old
                .writer
                .lock()
                .expect("ctrl writer")
                .shutdown(std::net::Shutdown::Both);
            if let Some(reader) = old.reader.take() {
                let _ = reader.join();
            }
        }
        self.peers[peer] = dial_ctrl(addr, Instant::now() + timeout, &self.txs)?;
        Ok(())
    }

    /// Asks the peer hosting `initiator` to initiate §5.3 formation of
    /// `group` with the given membership, and waits for the engine's
    /// verdict. This is the crash-recovery re-entry path: after a
    /// restarted peer reconnects, a surviving member initiates a fresh
    /// group spanning the survivors and the rejoined nodes.
    ///
    /// # Errors
    ///
    /// [`SendError::NotMember`] if the engine rejected the formation,
    /// the initiator is unknown, or the control connection died.
    pub fn form_group(
        &self,
        initiator: ProcessId,
        group: GroupId,
        members: &[ProcessId],
    ) -> Result<(), SendError> {
        let Some(peer) = self.peer_for(initiator) else {
            return Err(SendError::NotMember { group });
        };
        let mut rec = vec![OP_FORM];
        put_u32(&mut rec, initiator.0);
        put_u32(&mut rec, group.0);
        #[allow(clippy::cast_possible_truncation)]
        put_u32(&mut rec, members.len() as u32);
        for m in members {
            put_u32(&mut rec, m.0);
        }
        let (tx, rx) = unbounded();
        peer.pending
            .verdicts
            .lock()
            .expect("verdict queue")
            .push_back(tx);
        if write_record(&peer.writer, &rec).is_err() {
            let _ = peer
                .pending
                .verdicts
                .lock()
                .expect("verdict queue")
                .pop_back();
            return Err(SendError::NotMember { group });
        }
        rx.recv_timeout(Duration::from_secs(30))
            .unwrap_or(Err(SendError::NotMember { group }))
    }

    /// Waits up to `timeout` for `group` to report active on `node`,
    /// consuming (and discarding) other outputs of that node meanwhile.
    #[must_use]
    pub fn await_group_active(
        &self,
        node: ProcessId,
        group: GroupId,
        timeout: Duration,
    ) -> Option<View> {
        let rx = self.outputs(node)?;
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            match rx.recv_timeout(left) {
                Ok(Output::GroupActive { group: g, view }) if g == group => return Some(view),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    fn peer_for(&self, node: ProcessId) -> Option<&CtrlPeer> {
        let home = *self.home.get(node.0.checked_sub(1)? as usize)?;
        self.peers.get(home)
    }

    /// Submits a multicast and hands the engine's eventual verdict to
    /// `reply`; `false` if the op could not be submitted at all.
    pub fn multicast_pipelined(
        &self,
        node: ProcessId,
        group: GroupId,
        payload: &[u8],
        reply: &Sender<Result<(), SendError>>,
    ) -> bool {
        let Some(peer) = self.peer_for(node) else {
            return false;
        };
        let mut rec = vec![OP_MULTICAST];
        put_u32(&mut rec, node.0);
        put_u32(&mut rec, group.0);
        rec.extend_from_slice(payload);
        // Queue the reply slot before writing: the verdict may race back
        // before this thread would otherwise get around to it.
        peer.pending
            .verdicts
            .lock()
            .expect("verdict queue")
            .push_back(reply.clone());
        if write_record(&peer.writer, &rec).is_ok() {
            return true;
        }
        let _ = peer
            .pending
            .verdicts
            .lock()
            .expect("verdict queue")
            .pop_back();
        false
    }

    /// Blocking multicast: submits and waits for the verdict.
    ///
    /// # Errors
    ///
    /// The engine's verdict; a dead control connection reports as
    /// [`SendError::NotMember`].
    pub fn multicast(
        &self,
        node: ProcessId,
        group: GroupId,
        payload: &[u8],
    ) -> Result<(), SendError> {
        let (tx, rx) = unbounded();
        if !self.multicast_pipelined(node, group, payload, &tx) {
            return Err(SendError::NotMember { group });
        }
        rx.recv_timeout(Duration::from_secs(30))
            .unwrap_or(Err(SendError::NotMember { group }))
    }

    /// This node's engine outputs (deliveries and view changes), as
    /// streamed by its host process.
    #[must_use]
    pub fn outputs(&self, node: ProcessId) -> Option<Receiver<Output>> {
        self.outputs.get(node.0.checked_sub(1)? as usize).cloned()
    }

    /// Cluster-wide wire statistics: the sum over every peer's local
    /// accounting. Also refreshes the cached shard total.
    #[must_use]
    pub fn wire_stats(&self) -> Option<WireStats> {
        let mut sum = WireStats::default();
        let mut shards_total = 0u64;
        for peer in &self.peers {
            let (tx, rx) = unbounded();
            peer.pending
                .stats
                .lock()
                .expect("stats queue")
                .push_back(tx);
            write_record(&peer.writer, &[OP_STATS]).ok()?;
            let (stats, shards) = rx.recv_timeout(Duration::from_secs(10)).ok()?;
            sum.frames += stats.frames;
            sum.envelopes += stats.envelopes;
            sum.bytes += stats.bytes;
            sum.null_frames += stats.null_frames;
            sum.suppressed_nulls += stats.suppressed_nulls;
            for (acc, bucket) in sum.occupancy.iter_mut().zip(stats.occupancy.iter()) {
                *acc += bucket;
            }
            sum.reconnects += stats.reconnects;
            sum.dropped_dead += stats.dropped_dead;
            sum.handshake_rejects += stats.handshake_rejects;
            sum.shed_multicasts += stats.shed_multicasts;
            shards_total += shards;
        }
        self.shards.store(shards_total, Ordering::Relaxed);
        Some(sum)
    }

    /// Total shards across all peers, as of the last
    /// [`RemoteCluster::wire_stats`] call.
    #[must_use]
    pub fn shards_used(&self) -> usize {
        usize::try_from(self.shards.load(Ordering::Relaxed)).unwrap_or(usize::MAX)
    }

    /// Asks every peer process to shut down its cluster and exit, and
    /// waits for each acknowledgement.
    pub fn shutdown_peers(mut self) {
        let mut acks = Vec::new();
        for peer in &self.peers {
            let (tx, rx) = unbounded();
            peer.pending.byes.lock().expect("bye queue").push_back(tx);
            if write_record(&peer.writer, &[OP_SHUTDOWN]).is_ok() {
                acks.push(rx);
            }
        }
        for rx in acks {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        }
        for peer in &mut self.peers {
            // Closing the write half unblocks the reader at EOF.
            let _ = peer
                .writer
                .lock()
                .expect("ctrl writer")
                .shutdown(std::net::Shutdown::Both);
            if let Some(reader) = peer.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

/// Demultiplexes one control connection's inbound records.
fn ctrl_reader_main(mut conn: TcpStream, pending: &PendingReplies, txs: &[Sender<Output>]) {
    let mut dec = RecordDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    let record = match dec.next_record() {
                        Ok(Some(r)) => r,
                        Ok(None) => break,
                        Err(_) => return,
                    };
                    if dispatch_record(&record, pending, txs).is_none() {
                        return;
                    }
                }
            }
        }
    }
}

fn dispatch_record(record: &[u8], pending: &PendingReplies, txs: &[Sender<Output>]) -> Option<()> {
    match record.first().copied()? {
        REC_VERDICT => {
            let verdict = match record.get(1).copied()? {
                0 => Ok(()),
                // Admission-boundary shed: preserved as Overloaded so
                // the generator counts backpressure, not churn.
                2 => Err(SendError::Overloaded { group: GroupId(0) }),
                // The group id is not echoed in the error record; the
                // generator only branches on the error kind.
                _ => Err(SendError::NotMember { group: GroupId(0) }),
            };
            let slot = pending
                .verdicts
                .lock()
                .expect("verdict queue")
                .pop_front()?;
            let _ = slot.send(verdict);
        }
        REC_DELIVERY => {
            let mut c = Cursor::new(&record[1..]);
            let node = c.u32().ok()?;
            let group = GroupId(c.u32().ok()?);
            let origin = ProcessId(c.u32().ok()?);
            let msn = Msn(c.u64().ok()?);
            let view_seq = ViewSeq(c.u32().ok()?);
            let payload = Bytes::from(c.rest().to_vec());
            let tx = txs.get(node.checked_sub(1)? as usize)?;
            let _ = tx.send(Output::Delivery(Delivery {
                group,
                origin,
                c: msn,
                view_seq,
                payload,
            }));
        }
        REC_VIEW => {
            let mut c = Cursor::new(&record[1..]);
            let node = c.u32().ok()?;
            let group = GroupId(c.u32().ok()?);
            let count = c.u32().ok()?;
            let mut members = Vec::new();
            for _ in 0..count {
                members.push(ProcessId(c.u32().ok()?));
            }
            let tx = txs.get(node.checked_sub(1)? as usize)?;
            // Sequence numbers are not carried over the control plane;
            // the generator counts view changes, it never orders them.
            let _ = tx.send(Output::ViewChange {
                group,
                view: View::initial(members.clone()),
                signed: SignedView::new(members, 0),
            });
        }
        REC_ACTIVE => {
            let mut c = Cursor::new(&record[1..]);
            let node = c.u32().ok()?;
            let group = GroupId(c.u32().ok()?);
            let count = c.u32().ok()?;
            let mut members = Vec::new();
            for _ in 0..count {
                members.push(ProcessId(c.u32().ok()?));
            }
            let tx = txs.get(node.checked_sub(1)? as usize)?;
            let _ = tx.send(Output::GroupActive {
                group,
                view: View::initial(members),
            });
        }
        REC_STATS => {
            let (stats, shards) = decode_stats(&record[1..]).ok()?;
            let slot = pending.stats.lock().expect("stats queue").pop_front()?;
            let _ = slot.send((stats, shards));
        }
        REC_BYE => {
            let slot = pending.byes.lock().expect("bye queue").pop_front()?;
            let _ = slot.send(());
        }
        _ => return None, // unknown record: sever
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block assignment: contiguous, exhaustive, balanced within one.
    #[test]
    fn peer_of_blocks_are_contiguous_and_balanced() {
        for (nodes, peers) in [(6u32, 3u32), (7, 3), (9, 4), (3, 3), (5, 1), (4, 4)] {
            let assignment: Vec<u32> = (1..=nodes).map(|i| peer_of(i, nodes, peers)).collect();
            let mut sorted = assignment.clone();
            sorted.sort_unstable();
            assert_eq!(assignment, sorted, "blocks must be contiguous");
            let mut counts = vec![0u32; peers as usize];
            for &p in &assignment {
                counts[p as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "every peer hosts something");
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "block sizes differ by at most one");
        }
    }

    /// Round-robin groups over block-assigned nodes span every peer —
    /// the property that makes the loopback smoke test exercise real
    /// sockets.
    #[test]
    fn every_group_spans_every_peer() {
        let (nodes, groups, peers) = (6u32, 2u32, 3u32);
        for g in 0..groups {
            let owners: std::collections::BTreeSet<u32> = members_of(g, nodes, groups)
                .iter()
                .map(|m| peer_of(m.0, nodes, peers))
                .collect();
            assert_eq!(
                owners.len(),
                peers as usize,
                "group {g} must span all peers"
            );
        }
    }

    /// Stats survive the control encoding byte-exactly.
    #[test]
    fn stats_roundtrip() {
        let mut stats = WireStats {
            frames: 7,
            envelopes: 21,
            bytes: 12345,
            null_frames: 2,
            suppressed_nulls: 3,
            reconnects: 1,
            dropped_dead: 4,
            handshake_rejects: 5,
            shed_multicasts: 9,
            ..WireStats::default()
        };
        for (i, bucket) in stats.occupancy.iter_mut().enumerate() {
            *bucket = i as u64 * 10;
        }
        let rec = encode_stats(&stats, 6);
        assert_eq!(rec[0], REC_STATS);
        let (back, shards) = decode_stats(&rec[1..]).expect("decodes");
        assert_eq!(back, stats);
        assert_eq!(shards, 6);
    }

    /// The record decoder reassembles records across arbitrary splits.
    #[test]
    fn record_decoder_handles_partial_pushes() {
        let mut encoded = BytesMut::new();
        let payloads: Vec<Vec<u8>> = vec![vec![1], vec![2; 300], vec![3; 5]];
        for p in &payloads {
            put_varint(&mut encoded, p.len() as u64);
            encoded.put_slice(p);
        }
        let mut dec = RecordDecoder::new();
        let mut got = Vec::new();
        for chunk in encoded.chunks(7) {
            dec.push(chunk);
            while let Some(r) = dec.next_record().expect("well-formed") {
                got.push(r);
            }
        }
        assert_eq!(got, payloads);
    }
}
