//! Parallel chaos-fleet sweeps: a work-stealing seed queue over scoped
//! worker threads, with deterministic aggregation.
//!
//! Seeds are claimed from an atomic counter (work stealing: fast seeds free
//! their worker for the next claim immediately), each seed runs completely
//! independently — plan generation, simulation and checking share no state
//! — and the aggregate is assembled order-independently: counters are
//! commutative sums and the failing-seed list is sorted by seed. The
//! result is therefore **bit-identical for every worker count**; only
//! wall-clock time changes. `tests/sweep_determinism.rs` pins this.
//!
//! The wall-clock budget (`--budget-secs`) bounds *claiming*: a worker that
//! sees the budget exhausted stops taking new seeds, but every claimed seed
//! finishes, so the swept prefix is always contiguous.

use crate::chaos::{delivery_count, history_hash, ChaosScenario};
use crate::checker::{check_all, Violation};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything observed about one swept seed.
#[derive(Debug)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// History digest, when requested via [`SweepConfig::hash_histories`]
    /// and the engine did not panic.
    pub hash: Option<u64>,
    /// Engine panic payload, if the run crashed the engine itself.
    pub panic: Option<String>,
    /// Checker violations (empty = green).
    pub violations: Vec<Violation>,
    /// Tagged deliveries observed.
    pub deliveries: u64,
}

impl SeedOutcome {
    /// Whether this seed failed (engine panic or any violation).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.panic.is_some() || !self.violations.is_empty()
    }
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads (1 = run inline on the calling thread).
    pub jobs: usize,
    /// Wall-clock claiming budget; `None` = sweep the whole range.
    pub budget: Option<Duration>,
    /// Record a [`crate::history_hash`] per seed (costs a serialisation
    /// pass per history; the CLI sweep leaves it off, the determinism test
    /// turns it on).
    pub hash_histories: bool,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            jobs: 1,
            budget: None,
            hash_histories: false,
        }
    }
}

/// Deterministic aggregate of a sweep.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Seeds actually run (the contiguous prefix of the range when a
    /// budget stopped the sweep early).
    pub ran: u64,
    /// Total tagged deliveries across all seeds run.
    pub deliveries: u64,
    /// Failing seeds, sorted by seed.
    pub failures: Vec<SeedOutcome>,
    /// Whether the budget stopped the sweep before the range was done.
    pub stopped_early: bool,
}

impl SweepReport {
    /// The failing seed numbers, sorted.
    #[must_use]
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.failures.iter().map(|o| o.seed).collect()
    }
}

/// Runs one chaos seed end-to-end: plan → simulate (panic-catching) →
/// check, with the plan's own checker options.
#[must_use]
pub fn run_chaos_seed(scenario: &ChaosScenario, hash_history: bool) -> SeedOutcome {
    let plan = scenario.plan();
    let opts = plan.check_options();
    match plan.try_run_history() {
        Ok(history) => SeedOutcome {
            seed: scenario.seed,
            hash: hash_history.then(|| history_hash(&history)),
            panic: None,
            violations: check_all(&history, &opts),
            deliveries: delivery_count(&history) as u64,
        },
        Err(panic_msg) => SeedOutcome {
            seed: scenario.seed,
            hash: None,
            panic: Some(panic_msg),
            violations: Vec::new(),
            deliveries: 0,
        },
    }
}

/// Sweeps `lo..hi` through `runner` on [`SweepConfig::jobs`] workers.
///
/// `runner` maps a seed to its outcome and must be a pure function of the
/// seed — that is what makes the aggregate independent of scheduling.
/// `progress` observes every completed outcome (serialised under a lock,
/// in completion order, which varies across runs; the second argument is
/// the monotone completed-seed count).
pub fn sweep_seeds<R, P>(lo: u64, hi: u64, cfg: &SweepConfig, runner: R, progress: P) -> SweepReport
where
    R: Fn(u64) -> SeedOutcome + Sync,
    P: Fn(&SeedOutcome, u64) + Sync,
{
    let started = Instant::now();
    let next = AtomicU64::new(lo);
    let completed = AtomicU64::new(0);
    let stopped = AtomicBool::new(false);
    let agg: Mutex<SweepReport> = Mutex::new(SweepReport::default());

    let worker = || loop {
        if let Some(budget) = cfg.budget {
            if started.elapsed() >= budget {
                if next.load(Ordering::Relaxed) < hi {
                    stopped.store(true, Ordering::Relaxed);
                }
                break;
            }
        }
        let seed = next.fetch_add(1, Ordering::Relaxed);
        if seed >= hi {
            break;
        }
        let outcome = runner(seed);
        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
        let mut agg = agg.lock().unwrap();
        agg.ran += 1;
        agg.deliveries += outcome.deliveries;
        progress(&outcome, done);
        if outcome.failed() {
            agg.failures.push(outcome);
        }
    };

    let jobs = cfg.jobs.max(1);
    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs).map(|_| s.spawn(worker)).collect();
            for h in handles {
                h.join().expect("sweep worker panicked");
            }
        });
    }

    let mut report = agg.into_inner().unwrap();
    report.stopped_early = stopped.load(Ordering::Relaxed);
    report.failures.sort_by_key(|o| o.seed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_outcome(seed: u64) -> SeedOutcome {
        SeedOutcome {
            seed,
            hash: Some(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            panic: (seed % 13 == 5).then(|| format!("boom {seed}")),
            violations: Vec::new(),
            deliveries: seed % 7,
        }
    }

    #[test]
    fn aggregate_is_identical_for_any_job_count() {
        let run = |jobs: usize| {
            let cfg = SweepConfig {
                jobs,
                ..SweepConfig::default()
            };
            sweep_seeds(10, 200, &cfg, fake_outcome, |_, _| {})
        };
        let a = run(1);
        for jobs in [2, 4, 8] {
            let b = run(jobs);
            assert_eq!(a.ran, b.ran);
            assert_eq!(a.deliveries, b.deliveries);
            assert_eq!(a.failing_seeds(), b.failing_seeds());
            assert!(!b.stopped_early);
        }
        assert_eq!(a.ran, 190);
        assert_eq!(
            a.failing_seeds(),
            (10..200).filter(|s| s % 13 == 5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn progress_sees_every_outcome_and_counts_monotonically() {
        let seen = Mutex::new(Vec::new());
        let cfg = SweepConfig {
            jobs: 4,
            ..SweepConfig::default()
        };
        let report = sweep_seeds(0, 50, &cfg, fake_outcome, |o, done| {
            seen.lock().unwrap().push((o.seed, done));
        });
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len() as u64, report.ran);
        let counts: Vec<u64> = seen.iter().map(|(_, d)| *d).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted, "completed count must be monotone");
        seen.sort_unstable();
        assert_eq!(
            seen.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (0..50).collect::<Vec<_>>(),
            "every seed observed exactly once"
        );
    }

    #[test]
    fn zero_budget_stops_before_claiming() {
        let cfg = SweepConfig {
            jobs: 3,
            budget: Some(Duration::ZERO),
            hash_histories: false,
        };
        let report = sweep_seeds(0, 1000, &cfg, fake_outcome, |_, _| {});
        assert_eq!(report.ran, 0);
        assert!(report.stopped_early);
    }
}
