//! The property checker: validates the paper's correctness properties over
//! a recorded [`History`].
//!
//! | Property | Paper statement | Check |
//! |---|---|---|
//! | MD1 | a message is delivered in view `Vr` only if its sender is in `Vr` | every delivery's origin is in the delivering view |
//! | MD4/MD4' | total order within and across groups | every pair of processes orders its common deliveries identically |
//! | MD5 | same-group causal prefix | if `m → m'` (same group) and `m'` delivered, `m` was delivered earlier |
//! | MD5' | cross-group causal prefix | as MD5 across groups, conditioned on `m.s` still being in the local view of `m.g` at the delivery of `m'` |
//! | VC1 | processes that never crash nor suspect each other install identical view sequences | prefix-compatible per-group view sequences |
//! | VC3/MD3 | identical consecutive views bracket identical delivery sets | delivery sets per closed view interval are equal |
//! | liveness/atomicity | quiescent runs: co-members of the final view delivered the same set, including everything its members sent | optional (fault schedules that partition meaningfully set their own expectations) |
//!
//! The happened-before relation is reconstructed from the per-process logs:
//! `a → b` iff a process sent `a` before sending `b`, or delivered `a`
//! before sending `b`, or transitively so.

use crate::history::{History, HistoryEvent, MessageId};
use newtop_types::{GroupId, ProcessId, ViewSeq};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// What to check (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// MD4/MD4' pairwise total order.
    pub total_order: bool,
    /// MD5/MD5' causal prefixes (disable for atomic-mode runs).
    pub causality: bool,
    /// VC1/VC3 view consistency.
    pub views: bool,
    /// Quiescent liveness/atomicity (enable for runs that end settled).
    pub liveness: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            total_order: true,
            causality: true,
            views: true,
            liveness: true,
        }
    }
}

/// A property violation found in a history.
#[derive(Debug, Clone)]
pub enum Violation {
    /// MD4/MD4': two processes ordered common messages differently.
    TotalOrder {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The first messages at which their common order diverges.
        at: (MessageId, MessageId),
    },
    /// MD5/MD5': an effect was delivered without its cause.
    CausalPrefix {
        /// The process that delivered out of causal order.
        p: ProcessId,
        /// The cause.
        cause: MessageId,
        /// The delivered effect.
        effect: MessageId,
    },
    /// MD1: a delivery's origin was not in the delivering view.
    SenderNotInView {
        /// The delivering process.
        p: ProcessId,
        /// The message.
        mid: Option<MessageId>,
        /// The group.
        group: GroupId,
        /// The view sequence the delivery was attributed to.
        view_seq: ViewSeq,
    },
    /// VC1: mutually unsuspecting processes installed diverging views.
    ViewSequence {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The first diverging view sequence number.
        seq: ViewSeq,
    },
    /// VC3: identical consecutive views bracket different delivery sets.
    DeliverySet {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The view interval with differing sets.
        seq: ViewSeq,
    },
    /// Liveness/atomicity at quiescence.
    Liveness {
        /// The process that is missing a delivery.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The missing message.
        mid: MessageId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TotalOrder { a, b, at } => write!(
                f,
                "MD4' violation: {a} and {b} disagree on the order of {:?} vs {:?}",
                at.0, at.1
            ),
            Violation::CausalPrefix { p, cause, effect } => write!(
                f,
                "MD5' violation at {p}: delivered {effect:?} without its cause {cause:?}"
            ),
            Violation::SenderNotInView {
                p,
                mid,
                group,
                view_seq,
            } => write!(
                f,
                "MD1 violation at {p}: delivery {mid:?} in {group} {view_seq} whose origin is not a member"
            ),
            Violation::ViewSequence { a, b, group, seq } => write!(
                f,
                "VC1 violation: {a} and {b} diverge in {group} at {seq} without mutual suspicion"
            ),
            Violation::DeliverySet { a, b, group, seq } => write!(
                f,
                "VC3 violation: {a} and {b} delivered different sets in {group} view {seq}"
            ),
            Violation::Liveness { p, group, mid } => write!(
                f,
                "liveness violation: {p} never delivered {mid:?} in {group}"
            ),
        }
    }
}

/// Per-process digested log used by several checks.
struct Digest {
    /// (log index, mid) of deliveries, all groups, in order.
    deliveries: Vec<(usize, MessageId, GroupId, ViewSeq)>,
    /// mid → log index of its delivery.
    delivered_at: BTreeMap<MessageId, usize>,
    /// (log index, group, mid) of sends.
    sends: Vec<(usize, GroupId, MessageId)>,
    /// group → (log index, view) in log order, including V0.
    views: BTreeMap<GroupId, Vec<(usize, newtop_types::View)>>,
    /// groups suspected pairs: (group, suspect).
    suspected: BTreeSet<(GroupId, ProcessId)>,
    /// groups this process voluntarily departed.
    departed: BTreeSet<GroupId>,
}

fn digest(h: &History, p: ProcessId) -> Digest {
    let mut d = Digest {
        deliveries: Vec::new(),
        delivered_at: BTreeMap::new(),
        sends: Vec::new(),
        views: BTreeMap::new(),
        suspected: BTreeSet::new(),
        departed: BTreeSet::new(),
    };
    let Some(evs) = h.events.get(&p) else {
        return d;
    };
    for (i, e) in evs.iter().enumerate() {
        match e {
            HistoryEvent::Delivered { delivery, mid, .. } => {
                if let Some(mid) = mid {
                    d.deliveries
                        .push((i, *mid, delivery.group, delivery.view_seq));
                    d.delivered_at.insert(*mid, i);
                }
            }
            HistoryEvent::Sent { group, mid, .. } => d.sends.push((i, *group, *mid)),
            HistoryEvent::InitialView { group, view } => {
                d.views.entry(*group).or_default().push((0, view.clone()));
            }
            HistoryEvent::ViewChange { group, view, .. } => {
                d.views.entry(*group).or_default().push((i, view.clone()));
            }
            HistoryEvent::Protocol { event, .. } => {
                if let newtop_core::ProtocolEvent::Suspected { group, pair } = event {
                    d.suspected.insert((*group, pair.suspect));
                }
            }
            HistoryEvent::GroupActive { .. } => {}
            HistoryEvent::Departed { group, .. } => {
                d.departed.insert(*group);
            }
        }
    }
    d
}

/// The happened-before DAG over tagged messages, as predecessor sets.
fn causal_predecessors(digests: &BTreeMap<ProcessId, Digest>) -> BTreeMap<MessageId, BTreeSet<MessageId>> {
    // Direct edges.
    let mut preds: BTreeMap<MessageId, BTreeSet<MessageId>> = BTreeMap::new();
    for d in digests.values() {
        // All deliveries and prior sends at this process precede each send.
        for (k, (send_idx, _, mid)) in d.sends.iter().enumerate() {
            let entry = preds.entry(*mid).or_default();
            for (_, _, prior_mid) in d.sends.iter().take(k) {
                entry.insert(*prior_mid);
            }
            for (del_idx, del_mid, _, _) in &d.deliveries {
                if del_idx < send_idx {
                    entry.insert(*del_mid);
                }
            }
        }
    }
    // Transitive closure (BFS per message; workloads are small enough).
    let keys: Vec<MessageId> = preds.keys().copied().collect();
    let mut closed: BTreeMap<MessageId, BTreeSet<MessageId>> = BTreeMap::new();
    for mid in keys {
        let mut seen: BTreeSet<MessageId> = BTreeSet::new();
        let mut queue: VecDeque<MessageId> =
            preds.get(&mid).map(|s| s.iter().copied().collect()).unwrap_or_default();
        while let Some(q) = queue.pop_front() {
            if seen.insert(q) {
                if let Some(more) = preds.get(&q) {
                    queue.extend(more.iter().copied());
                }
            }
        }
        closed.insert(mid, seen);
    }
    closed
}

/// Runs every enabled check and returns the violations found (empty = all
/// properties hold on this history).
#[must_use]
pub fn check_all(h: &History, opts: &CheckOptions) -> Vec<Violation> {
    let mut violations = Vec::new();
    let procs: Vec<ProcessId> = h.processes().collect();
    let digests: BTreeMap<ProcessId, Digest> =
        procs.iter().map(|p| (*p, digest(h, *p))).collect();

    // mid → (group, origin) from the senders' logs.
    let mut mid_group: BTreeMap<MessageId, (GroupId, ProcessId)> = BTreeMap::new();
    for (p, d) in &digests {
        for (_, g, mid) in &d.sends {
            mid_group.insert(*mid, (*g, *p));
        }
    }

    if opts.total_order {
        check_total_order(&procs, &digests, &mut violations);
    }
    if opts.causality {
        check_causality(&procs, &digests, &mid_group, &mut violations);
    }
    check_md1(&procs, &digests, &mid_group, &mut violations);
    if opts.views {
        check_vc1(h, &procs, &digests, &mut violations);
        check_vc3(&procs, &digests, &mut violations);
    }
    if opts.liveness {
        check_liveness(h, &procs, &digests, &mut violations);
    }
    violations
}

fn check_total_order(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            let da = &digests[a];
            let db = &digests[b];
            let set_a: BTreeSet<MessageId> = da.deliveries.iter().map(|d| d.1).collect();
            let set_b: BTreeSet<MessageId> = db.deliveries.iter().map(|d| d.1).collect();
            let common: BTreeSet<MessageId> = set_a.intersection(&set_b).copied().collect();
            let seq_a: Vec<MessageId> = da
                .deliveries
                .iter()
                .map(|d| d.1)
                .filter(|m| common.contains(m))
                .collect();
            let seq_b: Vec<MessageId> = db
                .deliveries
                .iter()
                .map(|d| d.1)
                .filter(|m| common.contains(m))
                .collect();
            if let Some(k) = (0..seq_a.len()).find(|k| seq_a[*k] != seq_b[*k]) {
                violations.push(Violation::TotalOrder {
                    a: *a,
                    b: *b,
                    at: (seq_a[k], seq_b[k]),
                });
            }
        }
    }
}

fn check_causality(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    mid_group: &BTreeMap<MessageId, (GroupId, ProcessId)>,
    violations: &mut Vec<Violation>,
) {
    let preds = causal_predecessors(digests);
    for p in procs {
        let d = &digests[p];
        for (eff_idx, eff_mid, eff_group, _) in &d.deliveries {
            let Some(causes) = preds.get(eff_mid) else {
                continue;
            };
            for cause in causes {
                let Some((cause_group, cause_origin)) = mid_group.get(cause) else {
                    continue;
                };
                if cause_group == eff_group {
                    // MD5: unconditional within the group.
                    match d.delivered_at.get(cause) {
                        Some(ci) if ci < eff_idx => {}
                        _ => violations.push(Violation::CausalPrefix {
                            p: *p,
                            cause: *cause,
                            effect: *eff_mid,
                        }),
                    }
                } else {
                    // MD5': conditioned on the cause's sender being in p's
                    // current view of the cause's group at this delivery.
                    let Some(views) = d.views.get(cause_group) else {
                        continue; // never a member of that group
                    };
                    let current = views
                        .iter()
                        .rfind(|(vi, _)| vi <= eff_idx)
                        .map(|(_, v)| v);
                    let Some(view) = current else { continue };
                    if !view.contains(*cause_origin) {
                        continue; // sender excluded: no obligation
                    }
                    match d.delivered_at.get(cause) {
                        Some(ci) if ci < eff_idx => {}
                        _ => violations.push(Violation::CausalPrefix {
                            p: *p,
                            cause: *cause,
                            effect: *eff_mid,
                        }),
                    }
                }
            }
        }
    }
}

fn check_md1(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    mid_group: &BTreeMap<MessageId, (GroupId, ProcessId)>,
    violations: &mut Vec<Violation>,
) {
    for p in procs {
        let d = &digests[p];
        for (_, mid, group, view_seq) in &d.deliveries {
            let Some((_, origin)) = mid_group.get(mid) else {
                continue;
            };
            let Some(views) = d.views.get(group) else {
                continue;
            };
            let Some(view) = views
                .iter()
                .map(|(_, v)| v)
                .find(|v| v.seq() == *view_seq)
            else {
                continue;
            };
            if !view.contains(*origin) {
                violations.push(Violation::SenderNotInView {
                    p: *p,
                    mid: Some(*mid),
                    group: *group,
                    view_seq: *view_seq,
                });
            }
        }
    }
}

fn check_vc1(
    h: &History,
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            if h.is_crashed(*a) || h.is_crashed(*b) {
                continue;
            }
            let da = &digests[a];
            let db = &digests[b];
            let groups: BTreeSet<GroupId> = da
                .views
                .keys()
                .chain(db.views.keys())
                .copied()
                .collect();
            for g in groups {
                let (Some(va), Some(vb)) = (da.views.get(&g), db.views.get(&g)) else {
                    continue;
                };
                if da.suspected.contains(&(g, *b)) || db.suspected.contains(&(g, *a)) {
                    continue; // VC1 precondition broken: they suspected each other
                }
                let shorter = va.len().min(vb.len());
                for k in 0..shorter {
                    let (_, view_a) = &va[k];
                    let (_, view_b) = &vb[k];
                    if view_a != view_b {
                        violations.push(Violation::ViewSequence {
                            a: *a,
                            b: *b,
                            group: g,
                            seq: view_a.seq(),
                        });
                        break;
                    }
                }
            }
        }
    }
}

fn check_vc3(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            let da = &digests[a];
            let db = &digests[b];
            let groups: BTreeSet<GroupId> = da.views.keys().copied().collect();
            for g in groups {
                let (Some(va), Some(vb)) = (da.views.get(&g), db.views.get(&g)) else {
                    continue;
                };
                // Closed intervals: view r and r+1 present and identical at both.
                for w in 0..va.len().saturating_sub(1) {
                    let (r, r_next) = (&va[w].1, &va[w + 1].1);
                    let Some(wb) = vb.iter().position(|(_, v)| v == r) else {
                        continue;
                    };
                    if wb + 1 >= vb.len() || &vb[wb + 1].1 != r_next {
                        continue;
                    }
                    let set = |d: &Digest, lo: usize, hi: usize| -> BTreeSet<MessageId> {
                        d.deliveries
                            .iter()
                            .filter(|(i, _, grp, _)| *grp == g && *i > lo && *i < hi)
                            .map(|(_, mid, _, _)| *mid)
                            .collect()
                    };
                    let sa = set(da, va[w].0, va[w + 1].0);
                    let sb = set(db, vb[wb].0, vb[wb + 1].0);
                    if sa != sb {
                        violations.push(Violation::DeliverySet {
                            a: *a,
                            b: *b,
                            group: g,
                            seq: r.seq(),
                        });
                    }
                }
            }
        }
    }
}

fn check_liveness(
    h: &History,
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    // For each group: survivors with identical final views must hold equal
    // delivery sets that include everything sent by final-view members.
    let groups: BTreeSet<GroupId> = digests
        .values()
        .flat_map(|d| d.views.keys().copied())
        .collect();
    for g in groups {
        let survivors: Vec<ProcessId> = procs
            .iter()
            .copied()
            .filter(|p| !h.is_crashed(*p) && digests[p].views.contains_key(&g))
            .collect();
        for p in &survivors {
            let d = &digests[p];
            if d.departed.contains(&g) {
                continue; // §3: no view, no obligations after leaving
            }
            let Some(final_view) = d.views.get(&g).and_then(|v| v.last()).map(|(_, v)| v) else {
                continue;
            };
            if !final_view.contains(*p) {
                continue;
            }
            let delivered: BTreeSet<MessageId> = d
                .deliveries
                .iter()
                .filter(|(_, _, grp, _)| *grp == g)
                .map(|(_, mid, _, _)| *mid)
                .collect();
            // Everything sent by a member of p's final view must be there.
            for q in final_view.members() {
                let Some(dq) = digests.get(q) else { continue };
                for (_, sg, mid) in &dq.sends {
                    if *sg == g && !delivered.contains(mid) {
                        violations.push(Violation::Liveness {
                            p: *p,
                            group: g,
                            mid: *mid,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimCluster;
    use newtop_sim::NetConfig;
    use newtop_types::{GroupConfig, Instant, OrderMode, Span};

    fn run_simple(mode: OrderMode) -> History {
        let mut c = SimCluster::new(3, NetConfig::new(7));
        c.bootstrap_group(GroupId(1), &[1, 2, 3], GroupConfig::new(mode));
        for k in 0..6u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 500),
                (k % 3) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.run_for(Span::from_millis(500));
        c.history()
    }

    #[test]
    fn clean_symmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Symmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        // And the run actually delivered things.
        assert_eq!(h.delivered_mids(ProcessId(1), GroupId(1)).len(), 6);
    }

    #[test]
    fn clean_asymmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Asymmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn checker_catches_fabricated_order_inversion() {
        let mut h = run_simple(OrderMode::Symmetric);
        // Swap two deliveries at P2 to fabricate an MD4 violation.
        let evs = h.events.get_mut(&ProcessId(2)).unwrap();
        let idxs: Vec<usize> = evs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, HistoryEvent::Delivered { .. }))
            .map(|(i, _)| i)
            .collect();
        evs.swap(idxs[0], idxs[1]);
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter().any(|x| matches!(x, Violation::TotalOrder { .. })),
            "fabricated inversion must be caught, got {v:?}"
        );
    }

    #[test]
    fn checker_catches_fabricated_missing_delivery() {
        let mut h = run_simple(OrderMode::Symmetric);
        let evs = h.events.get_mut(&ProcessId(3)).unwrap();
        let idx = evs
            .iter()
            .position(|e| matches!(e, HistoryEvent::Delivered { .. }))
            .unwrap();
        evs.remove(idx);
        let v = check_all(&h, &CheckOptions::default());
        assert!(!v.is_empty(), "dropped delivery must violate something");
    }

    #[test]
    fn crash_run_passes_with_liveness_scoped_to_survivors() {
        let mut c = SimCluster::new(4, NetConfig::new(9));
        c.bootstrap_group(GroupId(1), &[1, 2, 3, 4], GroupConfig::new(OrderMode::Symmetric));
        for k in 0..4u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 300),
                (k % 4) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.schedule_crash(Instant::from_millis_ext(50), 4);
        c.run_for(Span::from_millis(1500));
        let h = c.history();
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(h.is_crashed(ProcessId(4)));
    }

    trait InstantExt {
        fn from_millis_ext(ms: u64) -> Instant;
    }
    impl InstantExt for Instant {
        fn from_millis_ext(ms: u64) -> Instant {
            Instant::from_micros(ms * 1000)
        }
    }
}
