//! The property checker: validates the paper's correctness properties over
//! a recorded [`History`].
//!
//! | Property | Paper statement | Check |
//! |---|---|---|
//! | MD1 | a message is delivered in view `Vr` only if its sender is in `Vr` | every delivery's origin is in the delivering view |
//! | MD4/MD4' | total order within and across groups | every pair of processes orders its common deliveries identically |
//! | MD5 | same-group causal prefix | if `m → m'` (same group) and `m'` delivered, `m` was delivered earlier — conditioned on `m`'s sender still being in the local view (an excluded sender's tail may be agreed-discarded, step (viii); uniformity is covered by VC3) |
//! | MD5' | cross-group causal prefix | as MD5 across groups, conditioned on `m.s` still being in the local view of `m.g` at the delivery of `m'` |
//! | VC1 | processes that never crash nor suspect each other install identical view sequences | prefix-compatible per-group view sequences |
//! | VC3/MD3 | identical consecutive views bracket identical delivery sets | delivery sets per closed view interval are equal |
//! | exclusion barrier | nothing from an excluded member is delivered after the view change | log-order: every delivery's origin is in the locally current view; no deliveries after a voluntary departure |
//! | liveness/atomicity | quiescent runs: co-members of the final view delivered the same set, including everything its members sent | optional (fault schedules that partition meaningfully set their own expectations) |
//!
//! The happened-before relation is reconstructed from the per-process logs:
//! `a → b` iff a process sent `a` before sending `b`, or delivered `a`
//! before sending `b`, or transitively so.

use crate::history::{History, HistoryEvent, MessageId};
use newtop_types::{GroupId, ProcessId, ViewSeq};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// What to check (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// MD4/MD4' pairwise total order.
    pub total_order: bool,
    /// MD5/MD5' causal prefixes (disable for atomic-mode runs).
    pub causality: bool,
    /// VC1/VC3 view consistency.
    pub views: bool,
    /// Quiescent liveness/atomicity (enable for runs that end settled).
    pub liveness: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            total_order: true,
            causality: true,
            views: true,
            liveness: true,
        }
    }
}

/// A property violation found in a history.
#[derive(Debug, Clone)]
pub enum Violation {
    /// MD4/MD4': two processes ordered common messages differently.
    TotalOrder {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The first messages at which their common order diverges.
        at: (MessageId, MessageId),
    },
    /// MD5/MD5': an effect was delivered without its cause.
    CausalPrefix {
        /// The process that delivered out of causal order.
        p: ProcessId,
        /// The cause.
        cause: MessageId,
        /// The delivered effect.
        effect: MessageId,
    },
    /// MD1: a delivery's origin was not in the delivering view.
    SenderNotInView {
        /// The delivering process.
        p: ProcessId,
        /// The message.
        mid: Option<MessageId>,
        /// The group.
        group: GroupId,
        /// The view sequence the delivery was attributed to.
        view_seq: ViewSeq,
    },
    /// VC1: mutually unsuspecting processes installed diverging views.
    ViewSequence {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The first diverging view sequence number.
        seq: ViewSeq,
    },
    /// VC3: identical consecutive views bracket different delivery sets.
    DeliverySet {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The view interval with differing sets.
        seq: ViewSeq,
    },
    /// A process delivered the same tagged message more than once.
    DuplicateDelivery {
        /// The process that delivered twice.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The message delivered more than once.
        mid: MessageId,
    },
    /// Exclusion barrier: a delivery was observed after the delivering
    /// process had already installed a view excluding the origin (or after
    /// it had itself departed the group).
    DeliveryAfterExclusion {
        /// The delivering process.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The excluded (or self-departed) origin of the late delivery.
        origin: ProcessId,
        /// The message, when tagged.
        mid: Option<MessageId>,
    },
    /// Liveness/atomicity at quiescence.
    Liveness {
        /// The process that is missing a delivery.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The missing message.
        mid: MessageId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TotalOrder { a, b, at } => write!(
                f,
                "MD4' violation: {a} and {b} disagree on the order of {:?} vs {:?}",
                at.0, at.1
            ),
            Violation::CausalPrefix { p, cause, effect } => write!(
                f,
                "MD5' violation at {p}: delivered {effect:?} without its cause {cause:?}"
            ),
            Violation::SenderNotInView {
                p,
                mid,
                group,
                view_seq,
            } => write!(
                f,
                "MD1 violation at {p}: delivery {mid:?} in {group} {view_seq} whose origin is not a member"
            ),
            Violation::ViewSequence { a, b, group, seq } => write!(
                f,
                "VC1 violation: {a} and {b} diverge in {group} at {seq} without mutual suspicion"
            ),
            Violation::DeliverySet { a, b, group, seq } => write!(
                f,
                "VC3 violation: {a} and {b} delivered different sets in {group} view {seq}"
            ),
            Violation::DuplicateDelivery { p, group, mid } => write!(
                f,
                "duplicate delivery at {p}: {mid:?} delivered more than once in {group}"
            ),
            Violation::DeliveryAfterExclusion {
                p,
                group,
                origin,
                mid,
            } => write!(
                f,
                "exclusion-barrier violation at {p}: delivered {mid:?} from {origin} in {group} after excluding it"
            ),
            Violation::Liveness { p, group, mid } => write!(
                f,
                "liveness violation: {p} never delivered {mid:?} in {group}"
            ),
        }
    }
}

/// Per-process digested log used by several checks.
struct Digest {
    /// (log index, mid) of deliveries, all groups, in order.
    deliveries: Vec<(usize, MessageId, GroupId, ViewSeq)>,
    /// mid → log index of its delivery.
    delivered_at: BTreeMap<MessageId, usize>,
    /// mid → the number it was delivered under (first occurrence). Used to
    /// spot fail-over re-sequencing: a message whose delivered numbers
    /// disagree across processes was re-homed into a new view.
    delivered_c: BTreeMap<MessageId, newtop_types::Msn>,
    /// (log index, group, mid) of sends.
    sends: Vec<(usize, GroupId, MessageId)>,
    /// group → (log index, view) in log order, including V0.
    views: BTreeMap<GroupId, Vec<(usize, newtop_types::View)>>,
    /// groups suspected pairs: (group, suspect).
    suspected: BTreeSet<(GroupId, ProcessId)>,
    /// (group, failed) → log index of the first adopted detection naming
    /// them: step (viii) discards their undelivered tail from this point,
    /// so causal obligations on their messages end here, not only at the
    /// (possibly much later, barrier-delayed) view install.
    adopted_at: BTreeMap<(GroupId, ProcessId), usize>,
    /// groups this process voluntarily departed → log index of the
    /// departure *request* (liveness obligations end here).
    departed: BTreeMap<GroupId, usize>,
    /// groups whose departure actually executed → log index of completion
    /// (deliveries are legitimate between request and completion, §3).
    departure_done: BTreeMap<GroupId, usize>,
}

fn digest(h: &History, p: ProcessId) -> Digest {
    let mut d = Digest {
        deliveries: Vec::new(),
        delivered_at: BTreeMap::new(),
        delivered_c: BTreeMap::new(),
        sends: Vec::new(),
        views: BTreeMap::new(),
        suspected: BTreeSet::new(),
        adopted_at: BTreeMap::new(),
        departed: BTreeMap::new(),
        departure_done: BTreeMap::new(),
    };
    let Some(evs) = h.events.get(&p) else {
        return d;
    };
    for (i, e) in evs.iter().enumerate() {
        match e {
            HistoryEvent::Delivered { delivery, mid, .. } => {
                if let Some(mid) = mid {
                    d.deliveries
                        .push((i, *mid, delivery.group, delivery.view_seq));
                    d.delivered_at.insert(*mid, i);
                    d.delivered_c.entry(*mid).or_insert(delivery.c);
                }
            }
            HistoryEvent::Sent { group, mid, .. } => d.sends.push((i, *group, *mid)),
            HistoryEvent::InitialView { group, view } => {
                d.views.entry(*group).or_default().push((0, view.clone()));
            }
            HistoryEvent::ViewChange { group, view, .. } => {
                d.views.entry(*group).or_default().push((i, view.clone()));
            }
            HistoryEvent::Protocol { event, .. } => match event {
                newtop_core::ProtocolEvent::Suspected { group, pair } => {
                    d.suspected.insert((*group, pair.suspect));
                }
                newtop_core::ProtocolEvent::DetectionAdopted { group, detection } => {
                    for pair in detection {
                        d.adopted_at.entry((*group, pair.suspect)).or_insert(i);
                    }
                }
                newtop_core::ProtocolEvent::DepartureCompleted { group } => {
                    d.departure_done.entry(*group).or_insert(i);
                }
                _ => {}
            },
            HistoryEvent::GroupActive { .. } => {}
            HistoryEvent::Departed { group, .. } => {
                d.departed.entry(*group).or_insert(i);
            }
        }
    }
    d
}

/// The happened-before DAG over tagged messages, as predecessor sets.
fn causal_predecessors(
    digests: &BTreeMap<ProcessId, Digest>,
) -> BTreeMap<MessageId, BTreeSet<MessageId>> {
    // Direct edges.
    let mut preds: BTreeMap<MessageId, BTreeSet<MessageId>> = BTreeMap::new();
    for d in digests.values() {
        // All deliveries and prior sends at this process precede each send.
        for (k, (send_idx, _, mid)) in d.sends.iter().enumerate() {
            let entry = preds.entry(*mid).or_default();
            for (_, _, prior_mid) in d.sends.iter().take(k) {
                entry.insert(*prior_mid);
            }
            for (del_idx, del_mid, _, _) in &d.deliveries {
                if del_idx < send_idx {
                    entry.insert(*del_mid);
                }
            }
        }
    }
    // Transitive closure (BFS per message; workloads are small enough).
    let keys: Vec<MessageId> = preds.keys().copied().collect();
    let mut closed: BTreeMap<MessageId, BTreeSet<MessageId>> = BTreeMap::new();
    for mid in keys {
        let mut seen: BTreeSet<MessageId> = BTreeSet::new();
        let mut queue: VecDeque<MessageId> = preds
            .get(&mid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(q) = queue.pop_front() {
            if seen.insert(q) {
                if let Some(more) = preds.get(&q) {
                    queue.extend(more.iter().copied());
                }
            }
        }
        closed.insert(mid, seen);
    }
    closed
}

/// Runs every enabled check and returns the violations found (empty = all
/// properties hold on this history).
#[must_use]
pub fn check_all(h: &History, opts: &CheckOptions) -> Vec<Violation> {
    let mut violations = Vec::new();
    let procs: Vec<ProcessId> = h.processes().collect();
    let digests: BTreeMap<ProcessId, Digest> = procs.iter().map(|p| (*p, digest(h, *p))).collect();

    // mid → (group, origin) from the senders' logs.
    let mut mid_group: BTreeMap<MessageId, (GroupId, ProcessId)> = BTreeMap::new();
    for (p, d) in &digests {
        for (_, g, mid) in &d.sends {
            mid_group.insert(*mid, (*g, *p));
        }
    }

    check_duplicates(&procs, &digests, &mut violations);
    if opts.total_order {
        check_total_order(&procs, &digests, &mut violations);
    }
    if opts.causality {
        check_causality(&procs, &digests, &mid_group, &mut violations);
    }
    check_md1(&procs, &digests, &mid_group, &mut violations);
    check_exclusion_barrier(h, &procs, &mut violations);
    if opts.views {
        check_vc1(h, &procs, &digests, &mut violations);
        check_vc3(&procs, &digests, &mut violations);
    }
    if opts.liveness {
        check_liveness(h, &procs, &digests, &mut violations);
    }
    violations
}

/// Every tagged message is delivered at most once per process (checked
/// up front so the order comparison below can assume sets, and so a
/// re-delivery bug reports as itself rather than as an order divergence).
fn check_duplicates(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for p in procs {
        let mut seen: BTreeSet<MessageId> = BTreeSet::new();
        for (_, mid, group, _) in &digests[p].deliveries {
            if !seen.insert(*mid) {
                violations.push(Violation::DuplicateDelivery {
                    p: *p,
                    group: *group,
                    mid: *mid,
                });
            }
        }
    }
}

/// `(group, view_seq)` → the installed `View` object, for matching the
/// views two processes attributed a delivery to.
fn view_index(d: &Digest) -> BTreeMap<(GroupId, ViewSeq), &newtop_types::View> {
    let mut idx = BTreeMap::new();
    for (g, views) in &d.views {
        for (_, v) in views {
            idx.entry((*g, v.seq())).or_insert(v);
        }
    }
    idx
}

/// First-occurrence `(mid, group, view_seq)` per delivery (duplicates are
/// reported separately by `check_duplicates`).
fn delivery_attribution(d: &Digest) -> BTreeMap<MessageId, (GroupId, ViewSeq)> {
    let mut attr = BTreeMap::new();
    for (_, mid, g, seq) in &d.deliveries {
        attr.entry(*mid).or_insert((*g, *seq));
    }
    attr
}

fn check_total_order(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    // MD3/MD4 under partitionable membership (§5.2): order is promised
    // between processes *holding the same view* — a member that a cut (or
    // a crash mid-exclusion) left on a dead branch delivered under a view
    // the survivors replaced, and re-sequencing after sequencer fail-over
    // may legitimately reorder there. So the pairwise comparison covers
    // exactly the common messages both sides delivered under the
    // *identical* installed view (same seq and same membership). The
    // per-process indices are hoisted out of the O(P²) pair loop.
    let views: BTreeMap<ProcessId, _> = digests.iter().map(|(p, d)| (*p, view_index(d))).collect();
    let attrs: BTreeMap<ProcessId, _> = digests
        .iter()
        .map(|(p, d)| (*p, delivery_attribution(d)))
        .collect();
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            let da = &digests[a];
            let db = &digests[b];
            let (views_a, views_b) = (&views[a], &views[b]);
            let (attr_a, attr_b) = (&attrs[a], &attrs[b]);
            let comparable = |m: &MessageId| -> bool {
                let (Some((ga, sa)), Some((gb, sb))) = (attr_a.get(m), attr_b.get(m)) else {
                    return false;
                };
                ga == gb
                    && match (views_a.get(&(*ga, *sa)), views_b.get(&(*gb, *sb))) {
                        (Some(va), Some(vb)) => va == vb,
                        _ => false,
                    }
            };
            let project = |d: &Digest| -> Vec<MessageId> {
                let mut seen = BTreeSet::new();
                d.deliveries
                    .iter()
                    .map(|d| d.1)
                    .filter(|m| comparable(m) && seen.insert(*m))
                    .collect()
            };
            let seq_a = project(da);
            let seq_b = project(db);
            if let Some(k) = (0..seq_a.len().min(seq_b.len())).find(|k| seq_a[*k] != seq_b[*k]) {
                violations.push(Violation::TotalOrder {
                    a: *a,
                    b: *b,
                    at: (seq_a[k], seq_b[k]),
                });
            }
        }
    }
}

fn check_causality(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    mid_group: &BTreeMap<MessageId, (GroupId, ProcessId)>,
    violations: &mut Vec<Violation>,
) {
    let preds = causal_predecessors(digests);
    // Messages whose delivered numbers disagree across processes were
    // re-sequenced by a fail-over (the old relay was agreed-discarded and
    // the message re-homed under a new number in a new view). Their
    // delivery position no longer tracks the single-clock causal order
    // (CA2), so the prefix obligation is waived for them as causes; the
    // view-scoped order checks still constrain them.
    let mut resequenced: BTreeSet<MessageId> = BTreeSet::new();
    let mut first_c: BTreeMap<MessageId, newtop_types::Msn> = BTreeMap::new();
    for d in digests.values() {
        for (mid, c) in &d.delivered_c {
            match first_c.get(mid) {
                None => {
                    first_c.insert(*mid, *c);
                }
                Some(prev) if prev != c => {
                    resequenced.insert(*mid);
                }
                Some(_) => {}
            }
        }
    }
    for p in procs {
        let d = &digests[p];
        for (eff_idx, eff_mid, _, _) in &d.deliveries {
            let Some(causes) = preds.get(eff_mid) else {
                continue;
            };
            for cause in causes {
                if resequenced.contains(cause) {
                    continue;
                }
                let Some((cause_group, cause_origin)) = mid_group.get(cause) else {
                    continue;
                };
                // MD5/MD5': the causal-prefix obligation is conditioned (in
                // both the same-group and the cross-group case) on the
                // cause's sender still being in p's current view of the
                // cause's group when the effect is delivered. Once the
                // sender has been excluded, the step-(viii) agreement may
                // have discarded the cause ("even though it has been agreed
                // that m was sent before Pk failed") — uniformly at every
                // survivor, which VC3 and the pairwise order checks verify.
                let Some(views) = d.views.get(cause_group) else {
                    continue; // never a member of that group
                };
                if d.departure_done
                    .get(cause_group)
                    .is_some_and(|di| di <= eff_idx)
                {
                    continue; // already left the cause's group: no view,
                              // no obligation (§3)
                }
                let current = views.iter().rfind(|(vi, _)| vi <= eff_idx).map(|(_, v)| v);
                let Some(view) = current else { continue };
                if !view.contains(*cause_origin) {
                    continue; // sender excluded: no obligation
                }
                if d.adopted_at
                    .get(&(*cause_group, *cause_origin))
                    .is_some_and(|ai| ai <= eff_idx)
                {
                    // Exclusion agreed though not yet installed (the view
                    // change waits behind its delivery barrier): the
                    // sender's undelivered tail is already agreed-discarded
                    // (step (viii)), so the prefix obligation has ended.
                    continue;
                }
                match d.delivered_at.get(cause) {
                    Some(ci) if ci < eff_idx => {}
                    _ => violations.push(Violation::CausalPrefix {
                        p: *p,
                        cause: *cause,
                        effect: *eff_mid,
                    }),
                }
            }
        }
    }
}

fn check_md1(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    mid_group: &BTreeMap<MessageId, (GroupId, ProcessId)>,
    violations: &mut Vec<Violation>,
) {
    for p in procs {
        let d = &digests[p];
        for (_, mid, group, view_seq) in &d.deliveries {
            let Some((_, origin)) = mid_group.get(mid) else {
                continue;
            };
            let Some(views) = d.views.get(group) else {
                continue;
            };
            let Some(view) = views.iter().map(|(_, v)| v).find(|v| v.seq() == *view_seq) else {
                continue;
            };
            if !view.contains(*origin) {
                violations.push(Violation::SenderNotInView {
                    p: *p,
                    mid: Some(*mid),
                    group: *group,
                    view_seq: *view_seq,
                });
            }
        }
    }
}

/// The exclusion barrier, checked directly in log order (unlike MD1, which
/// trusts the `view_seq` a delivery was attributed to): once a process has
/// installed a view of `g` that excludes `q`, no later event in its log may
/// deliver a message of `g` originated by `q`; and once its own voluntary
/// departure from `g` *completes* (deliveries are still legitimate while
/// the deferred departure drains obligations, §3), a process delivers
/// nothing further in `g` at all.
fn check_exclusion_barrier(h: &History, procs: &[ProcessId], violations: &mut Vec<Violation>) {
    use std::collections::BTreeMap as Map;
    for p in procs {
        let Some(evs) = h.events.get(p) else { continue };
        let mut current: Map<GroupId, &newtop_types::View> = Map::new();
        let mut departed: BTreeSet<GroupId> = BTreeSet::new();
        for e in evs {
            match e {
                HistoryEvent::InitialView { group, view }
                | HistoryEvent::ViewChange { group, view, .. } => {
                    current.insert(*group, view);
                }
                HistoryEvent::Protocol {
                    event: newtop_core::ProtocolEvent::DepartureCompleted { group },
                    ..
                } => {
                    departed.insert(*group);
                }
                HistoryEvent::Delivered { delivery, mid, .. } => {
                    let g = delivery.group;
                    let excluded = current
                        .get(&g)
                        .is_some_and(|v| !v.contains(delivery.origin));
                    if departed.contains(&g) || excluded {
                        violations.push(Violation::DeliveryAfterExclusion {
                            p: *p,
                            group: g,
                            origin: delivery.origin,
                            mid: *mid,
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_vc1(
    h: &History,
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            if h.is_crashed(*a) || h.is_crashed(*b) {
                continue;
            }
            let da = &digests[a];
            let db = &digests[b];
            let groups: BTreeSet<GroupId> =
                da.views.keys().chain(db.views.keys()).copied().collect();
            for g in groups {
                let (Some(va), Some(vb)) = (da.views.get(&g), db.views.get(&g)) else {
                    continue;
                };
                if da.suspected.contains(&(g, *b)) || db.suspected.contains(&(g, *a)) {
                    continue; // VC1 precondition broken: they suspected each other
                }
                let shorter = va.len().min(vb.len());
                for k in 0..shorter {
                    let (_, view_a) = &va[k];
                    let (_, view_b) = &vb[k];
                    if view_a != view_b {
                        violations.push(Violation::ViewSequence {
                            a: *a,
                            b: *b,
                            group: g,
                            seq: view_a.seq(),
                        });
                        break;
                    }
                }
            }
        }
    }
}

fn check_vc3(
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    for (ai, a) in procs.iter().enumerate() {
        for b in procs.iter().skip(ai + 1) {
            let da = &digests[a];
            let db = &digests[b];
            let groups: BTreeSet<GroupId> = da.views.keys().copied().collect();
            for g in groups {
                let (Some(va), Some(vb)) = (da.views.get(&g), db.views.get(&g)) else {
                    continue;
                };
                // Closed intervals: view r and r+1 present and identical at both.
                for w in 0..va.len().saturating_sub(1) {
                    let (r, r_next) = (&va[w].1, &va[w + 1].1);
                    let Some(wb) = vb.iter().position(|(_, v)| v == r) else {
                        continue;
                    };
                    if wb + 1 >= vb.len() || &vb[wb + 1].1 != r_next {
                        continue;
                    }
                    let set = |d: &Digest, lo: usize, hi: usize| -> BTreeSet<MessageId> {
                        d.deliveries
                            .iter()
                            .filter(|(i, _, grp, _)| *grp == g && *i > lo && *i < hi)
                            .map(|(_, mid, _, _)| *mid)
                            .collect()
                    };
                    let sa = set(da, va[w].0, va[w + 1].0);
                    let sb = set(db, vb[wb].0, vb[wb + 1].0);
                    if sa != sb {
                        violations.push(Violation::DeliverySet {
                            a: *a,
                            b: *b,
                            group: g,
                            seq: r.seq(),
                        });
                    }
                }
            }
        }
    }
}

fn check_liveness(
    h: &History,
    procs: &[ProcessId],
    digests: &BTreeMap<ProcessId, Digest>,
    violations: &mut Vec<Violation>,
) {
    // For each group: survivors with identical final views must hold equal
    // delivery sets that include everything sent by final-view members.
    let groups: BTreeSet<GroupId> = digests
        .values()
        .flat_map(|d| d.views.keys().copied())
        .collect();
    for g in groups {
        let survivors: Vec<ProcessId> = procs
            .iter()
            .copied()
            .filter(|p| !h.is_crashed(*p) && digests[p].views.contains_key(&g))
            .collect();
        for p in &survivors {
            let d = &digests[p];
            if d.departed.contains_key(&g) {
                continue; // §3: no view, no obligations after leaving
            }
            let Some(final_view) = d.views.get(&g).and_then(|v| v.last()).map(|(_, v)| v) else {
                continue;
            };
            if !final_view.contains(*p) {
                continue;
            }
            let delivered: BTreeSet<MessageId> = d
                .deliveries
                .iter()
                .filter(|(_, _, grp, _)| *grp == g)
                .map(|(_, mid, _, _)| *mid)
                .collect();
            // Everything sent by a member of p's final view must be there.
            for q in final_view.members() {
                let Some(dq) = digests.get(q) else { continue };
                for (_, sg, mid) in &dq.sends {
                    if *sg == g && !delivered.contains(mid) {
                        violations.push(Violation::Liveness {
                            p: *p,
                            group: g,
                            mid: *mid,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimCluster;
    use newtop_sim::NetConfig;
    use newtop_types::{GroupConfig, Instant, OrderMode, Span};

    fn run_simple(mode: OrderMode) -> History {
        let mut c = SimCluster::new(3, NetConfig::new(7));
        c.bootstrap_group(GroupId(1), &[1, 2, 3], GroupConfig::new(mode));
        for k in 0..6u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 500),
                (k % 3) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.run_for(Span::from_millis(500));
        c.history()
    }

    #[test]
    fn clean_symmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Symmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        // And the run actually delivered things.
        assert_eq!(h.delivered_mids(ProcessId(1), GroupId(1)).len(), 6);
    }

    #[test]
    fn clean_asymmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Asymmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn checker_catches_fabricated_order_inversion() {
        let mut h = run_simple(OrderMode::Symmetric);
        // Swap two deliveries at P2 to fabricate an MD4 violation.
        let evs = h.events.get_mut(&ProcessId(2)).unwrap();
        let idxs: Vec<usize> = evs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, HistoryEvent::Delivered { .. }))
            .map(|(i, _)| i)
            .collect();
        evs.swap(idxs[0], idxs[1]);
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter().any(|x| matches!(x, Violation::TotalOrder { .. })),
            "fabricated inversion must be caught, got {v:?}"
        );
    }

    #[test]
    fn checker_catches_fabricated_missing_delivery() {
        let mut h = run_simple(OrderMode::Symmetric);
        let evs = h.events.get_mut(&ProcessId(3)).unwrap();
        let idx = evs
            .iter()
            .position(|e| matches!(e, HistoryEvent::Delivered { .. }))
            .unwrap();
        evs.remove(idx);
        let v = check_all(&h, &CheckOptions::default());
        assert!(!v.is_empty(), "dropped delivery must violate something");
    }

    #[test]
    fn checker_catches_fabricated_delivery_after_exclusion() {
        use newtop_core::Delivery;
        use newtop_types::{Msn, ProcessId, View, ViewSeq};
        let mut h = run_simple(OrderMode::Symmetric);
        // Fabricate at P1: a view change that excludes P2, followed by a
        // delivery originated by P2.
        let evs = h.events.get_mut(&ProcessId(1)).unwrap();
        let shrunk = View::initial([ProcessId(1), ProcessId(3)]);
        evs.push(HistoryEvent::ViewChange {
            at: Instant::from_micros(999_000),
            group: GroupId(1),
            view: shrunk.clone(),
            signed: newtop_types::SignedView::new(shrunk.iter(), 1),
        });
        evs.push(HistoryEvent::Delivered {
            at: Instant::from_micros(999_500),
            delivery: Delivery {
                group: GroupId(1),
                origin: ProcessId(2),
                c: Msn(99),
                view_seq: ViewSeq(1),
                payload: MessageId(99).to_payload(),
            },
            mid: Some(MessageId(99)),
        });
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DeliveryAfterExclusion { .. })),
            "late delivery from an excluded origin must be caught, got {v:?}"
        );
    }

    #[test]
    fn checker_catches_fabricated_delivery_after_departure() {
        use newtop_core::Delivery;
        use newtop_types::{Msn, ProcessId, ViewSeq};
        let mut h = run_simple(OrderMode::Symmetric);
        let evs = h.events.get_mut(&ProcessId(2)).unwrap();
        evs.push(HistoryEvent::Departed {
            at: Instant::from_micros(999_000),
            group: GroupId(1),
        });
        evs.push(HistoryEvent::Protocol {
            at: Instant::from_micros(999_100),
            event: newtop_core::ProtocolEvent::DepartureCompleted { group: GroupId(1) },
        });
        evs.push(HistoryEvent::Delivered {
            at: Instant::from_micros(999_500),
            delivery: Delivery {
                group: GroupId(1),
                origin: ProcessId(1),
                c: Msn(98),
                view_seq: ViewSeq(0),
                payload: MessageId(98).to_payload(),
            },
            mid: Some(MessageId(98)),
        });
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DeliveryAfterExclusion { .. })),
            "delivery after departure must be caught, got {v:?}"
        );
    }

    #[test]
    fn crash_run_passes_with_liveness_scoped_to_survivors() {
        let mut c = SimCluster::new(4, NetConfig::new(9));
        c.bootstrap_group(
            GroupId(1),
            &[1, 2, 3, 4],
            GroupConfig::new(OrderMode::Symmetric),
        );
        for k in 0..4u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 300),
                (k % 4) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.schedule_crash(Instant::from_millis_ext(50), 4);
        c.run_for(Span::from_millis(1500));
        let h = c.history();
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(h.is_crashed(ProcessId(4)));
    }

    trait InstantExt {
        fn from_millis_ext(ms: u64) -> Instant;
    }
    impl InstantExt for Instant {
        fn from_millis_ext(ms: u64) -> Instant {
            Instant::from_micros(ms * 1000)
        }
    }
}
