//! The property checker: validates the paper's correctness properties over
//! a recorded [`History`].
//!
//! | Property | Paper statement | Check |
//! |---|---|---|
//! | MD1 | a message is delivered in view `Vr` only if its sender is in `Vr` | every delivery's origin is in the delivering view |
//! | MD4/MD4' | total order within and across groups | every pair of processes orders its common deliveries identically |
//! | MD5 | same-group causal prefix | if `m → m'` (same group) and `m'` delivered, `m` was delivered earlier — conditioned on `m`'s sender still being in the local view (an excluded sender's tail may be agreed-discarded, step (viii); uniformity is covered by VC3) |
//! | MD5' | cross-group causal prefix | as MD5 across groups, conditioned on `m.s` still being in the local view of `m.g` at the delivery of `m'` |
//! | VC1 | processes that never crash nor suspect each other install identical view sequences | prefix-compatible per-group view sequences |
//! | VC3/MD3 | identical consecutive views bracket identical delivery sets | delivery sets per closed view interval are equal — for pairs still mutually connected while closing it (a confirmed exclusion of the peer adopted before the closing install exempts the bracket: partition sides close a shared view independently) |
//! | exclusion barrier | nothing from an excluded member is delivered after the view change | log-order: every delivery's origin is in the locally current view; no deliveries after a voluntary departure |
//! | liveness/atomicity | quiescent runs: co-members of the final view delivered the same set, including everything its members sent | optional (fault schedules that partition meaningfully set their own expectations) |
//!
//! The happened-before relation is reconstructed from the per-process logs:
//! `a → b` iff a process sent `a` before sending `b`, or delivered `a`
//! before sending `b`, or transitively so.
//!
//! # Single-pass architecture
//!
//! The checker is the inner loop of the chaos fleet (it runs once per swept
//! seed), so it indexes each history exactly once and runs every check off
//! those indices instead of re-scanning per check:
//!
//! * message identities are interned to dense `u32`s, so per-message state
//!   lives in flat vectors and message *sets* are bitsets ([`BitSet`]);
//! * installed views are interned globally ([`ViewTable`]), so the
//!   view-matched order comparison (MD4 under partitionable membership) is
//!   an integer compare;
//! * each per-process log is walked once ([`digest`]), producing delivery /
//!   send / view timelines — the log-order exclusion-barrier check runs
//!   inline during that same walk;
//! * the happened-before closure is a bitset fixpoint over interned ids
//!   rather than per-message BFS over `BTreeSet`s.

use crate::history::{History, HistoryEvent, MessageId};
use newtop_types::{GroupId, ProcessId, ViewSeq};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What to check (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// MD4/MD4' pairwise total order.
    pub total_order: bool,
    /// MD5/MD5' causal prefixes (disable for atomic-mode runs).
    pub causality: bool,
    /// VC1/VC3 view consistency.
    pub views: bool,
    /// Quiescent liveness/atomicity (enable for runs that end settled).
    pub liveness: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            total_order: true,
            causality: true,
            views: true,
            liveness: true,
        }
    }
}

/// A property violation found in a history.
#[derive(Debug, Clone)]
pub enum Violation {
    /// MD4/MD4': two processes ordered common messages differently.
    TotalOrder {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The first messages at which their common order diverges.
        at: (MessageId, MessageId),
    },
    /// MD5/MD5': an effect was delivered without its cause.
    CausalPrefix {
        /// The process that delivered out of causal order.
        p: ProcessId,
        /// The cause.
        cause: MessageId,
        /// The delivered effect.
        effect: MessageId,
    },
    /// MD1: a delivery's origin was not in the delivering view.
    SenderNotInView {
        /// The delivering process.
        p: ProcessId,
        /// The message.
        mid: Option<MessageId>,
        /// The group.
        group: GroupId,
        /// The view sequence the delivery was attributed to.
        view_seq: ViewSeq,
    },
    /// VC1: mutually unsuspecting processes installed diverging views.
    ViewSequence {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The first diverging view sequence number.
        seq: ViewSeq,
    },
    /// VC3: identical consecutive views bracket different delivery sets.
    DeliverySet {
        /// The disagreeing pair.
        a: ProcessId,
        /// The disagreeing pair.
        b: ProcessId,
        /// The group.
        group: GroupId,
        /// The view interval with differing sets.
        seq: ViewSeq,
    },
    /// A process delivered the same tagged message more than once.
    DuplicateDelivery {
        /// The process that delivered twice.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The message delivered more than once.
        mid: MessageId,
    },
    /// Exclusion barrier: a delivery was observed after the delivering
    /// process had already installed a view excluding the origin (or after
    /// it had itself departed the group).
    DeliveryAfterExclusion {
        /// The delivering process.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The excluded (or self-departed) origin of the late delivery.
        origin: ProcessId,
        /// The message, when tagged.
        mid: Option<MessageId>,
    },
    /// Liveness/atomicity at quiescence.
    Liveness {
        /// The process that is missing a delivery.
        p: ProcessId,
        /// The group.
        group: GroupId,
        /// The missing message.
        mid: MessageId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TotalOrder { a, b, at } => write!(
                f,
                "MD4' violation: {a} and {b} disagree on the order of {:?} vs {:?}",
                at.0, at.1
            ),
            Violation::CausalPrefix { p, cause, effect } => write!(
                f,
                "MD5' violation at {p}: delivered {effect:?} without its cause {cause:?}"
            ),
            Violation::SenderNotInView {
                p,
                mid,
                group,
                view_seq,
            } => write!(
                f,
                "MD1 violation at {p}: delivery {mid:?} in {group} {view_seq} whose origin is not a member"
            ),
            Violation::ViewSequence { a, b, group, seq } => write!(
                f,
                "VC1 violation: {a} and {b} diverge in {group} at {seq} without mutual suspicion"
            ),
            Violation::DeliverySet { a, b, group, seq } => write!(
                f,
                "VC3 violation: {a} and {b} delivered different sets in {group} view {seq}"
            ),
            Violation::DuplicateDelivery { p, group, mid } => write!(
                f,
                "duplicate delivery at {p}: {mid:?} delivered more than once in {group}"
            ),
            Violation::DeliveryAfterExclusion {
                p,
                group,
                origin,
                mid,
            } => write!(
                f,
                "exclusion-barrier violation at {p}: delivered {mid:?} from {origin} in {group} after excluding it"
            ),
            Violation::Liveness { p, group, mid } => write!(
                f,
                "liveness violation: {p} never delivered {mid:?} in {group}"
            ),
        }
    }
}

/// Sentinel for "no log index" in dense per-message vectors.
const NONE_IDX: u32 = u32::MAX;

/// A fixed-capacity bitset over interned message ids.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts `i`, returning whether it was newly set.
    fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`, returning whether any bit changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Iterates set bits in ascending order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }
}

/// Interned message ids: dense `u32` ↔ [`MessageId`].
#[derive(Default)]
struct MidTable {
    ids: BTreeMap<MessageId, u32>,
    mids: Vec<MessageId>,
}

impl MidTable {
    fn intern(&mut self, mid: MessageId) -> u32 {
        *self.ids.entry(mid).or_insert_with(|| {
            self.mids.push(mid);
            (self.mids.len() - 1) as u32
        })
    }

    fn len(&self) -> usize {
        self.mids.len()
    }
}

/// Globally interned installed views: `(group, membership)` → dense id, so
/// "same installed view at both processes" is an integer compare.
#[derive(Default)]
struct ViewTable {
    views: Vec<(GroupId, newtop_types::View)>,
}

impl ViewTable {
    fn intern(&mut self, group: GroupId, view: &newtop_types::View) -> u32 {
        match self
            .views
            .iter()
            .position(|(g, v)| *g == group && v == view)
        {
            Some(i) => i as u32,
            None => {
                self.views.push((group, view.clone()));
                (self.views.len() - 1) as u32
            }
        }
    }

    fn view(&self, vid: u32) -> &newtop_types::View {
        &self.views[vid as usize].1
    }
}

/// One tagged delivery in log order.
struct DeliveryRec {
    idx: u32,
    cid: u32,
    group: GroupId,
    view_seq: ViewSeq,
}

/// One installed view in log order.
struct ViewRec {
    idx: u32,
    seq: ViewSeq,
    vid: u32,
}

/// Per-process digested log: every index the checks below need, built in
/// one pass over the raw event log (plus the log-order exclusion-barrier
/// check, which runs inline during that same pass).
struct Digest {
    /// Tagged deliveries, all groups, in log order.
    deliveries: Vec<DeliveryRec>,
    /// cid → log index of its (last) delivery, `NONE_IDX` if never.
    delivered_at: Vec<u32>,
    /// cid → the number it was first delivered under here. Used to spot
    /// fail-over re-sequencing: a message whose delivered numbers disagree
    /// across processes was re-homed into a new view.
    delivered_c: Vec<Option<newtop_types::Msn>>,
    /// (log index, group, cid) of sends, in log order.
    sends: Vec<(u32, GroupId, u32)>,
    /// group → installed views in log order, including V0.
    views: BTreeMap<GroupId, Vec<ViewRec>>,
    /// `(group, view_seq)` → interned id of the first view installed under
    /// that sequence (delivery-attribution resolution for MD1/MD4).
    view_by_seq: BTreeMap<(GroupId, ViewSeq), u32>,
    /// group → tagged deliveries `(log index, cid)` of that group.
    by_group: BTreeMap<GroupId, Vec<(u32, u32)>>,
    /// cid → first `(group, view_seq, resolved vid)` this process
    /// attributed the delivery to (`NONE_IDX` vid if no matching view).
    attr: Vec<Option<(GroupId, ViewSeq, u32)>>,
    /// Suspected pairs: (group, suspect).
    suspected: BTreeSet<(GroupId, ProcessId)>,
    /// (group, failed) → log index of the first adopted detection naming
    /// them: step (viii) discards their undelivered tail from this point,
    /// so causal obligations on their messages end here, not only at the
    /// (possibly much later, barrier-delayed) view install.
    adopted_at: BTreeMap<(GroupId, ProcessId), u32>,
    /// groups this process voluntarily departed → log index of the
    /// departure *request* (liveness obligations end here).
    departed: BTreeMap<GroupId, u32>,
    /// groups whose departure actually executed → log index of completion
    /// (deliveries are legitimate between request and completion, §3).
    departure_done: BTreeMap<GroupId, u32>,
    /// Exclusion-barrier violations found during the log walk.
    exclusion: Vec<Violation>,
}

fn digest(h: &History, p: ProcessId, mids: &mut MidTable, vtab: &mut ViewTable) -> Digest {
    let mut d = Digest {
        deliveries: Vec::new(),
        delivered_at: Vec::new(),
        delivered_c: Vec::new(),
        sends: Vec::new(),
        views: BTreeMap::new(),
        view_by_seq: BTreeMap::new(),
        by_group: BTreeMap::new(),
        attr: Vec::new(),
        suspected: BTreeSet::new(),
        adopted_at: BTreeMap::new(),
        departed: BTreeMap::new(),
        departure_done: BTreeMap::new(),
        exclusion: Vec::new(),
    };
    let Some(evs) = h.events.get(&p) else {
        return d;
    };
    // Log-order state for the inline exclusion-barrier check: once a view
    // of `g` excludes `q`, no later delivery of `g` may originate at `q`;
    // once the own departure *completes*, nothing of `g` delivers at all.
    let mut current_vid: BTreeMap<GroupId, u32> = BTreeMap::new();
    let mut left: BTreeSet<GroupId> = BTreeSet::new();
    for (i, e) in evs.iter().enumerate() {
        let i = i as u32;
        match e {
            HistoryEvent::Delivered { delivery, mid, .. } => {
                let g = delivery.group;
                let excluded = current_vid
                    .get(&g)
                    .is_some_and(|vid| !vtab.view(*vid).contains(delivery.origin));
                if left.contains(&g) || excluded {
                    d.exclusion.push(Violation::DeliveryAfterExclusion {
                        p,
                        group: g,
                        origin: delivery.origin,
                        mid: *mid,
                    });
                }
                if let Some(mid) = mid {
                    let cid = mids.intern(*mid);
                    grow(&mut d.delivered_at, mids.len(), NONE_IDX);
                    grow(&mut d.delivered_c, mids.len(), None);
                    grow(&mut d.attr, mids.len(), None);
                    d.deliveries.push(DeliveryRec {
                        idx: i,
                        cid,
                        group: g,
                        view_seq: delivery.view_seq,
                    });
                    d.by_group.entry(g).or_default().push((i, cid));
                    d.delivered_at[cid as usize] = i;
                    let slot = &mut d.delivered_c[cid as usize];
                    if slot.is_none() {
                        *slot = Some(delivery.c);
                    }
                    let attr = &mut d.attr[cid as usize];
                    if attr.is_none() {
                        // Resolved against the view table after the walk.
                        *attr = Some((g, delivery.view_seq, NONE_IDX));
                    }
                }
            }
            HistoryEvent::Sent { group, mid, .. } => {
                let cid = mids.intern(*mid);
                d.sends.push((i, *group, cid));
            }
            HistoryEvent::InitialView { group, view } => {
                let vid = vtab.intern(*group, view);
                current_vid.insert(*group, vid);
                d.views.entry(*group).or_default().push(ViewRec {
                    idx: 0,
                    seq: view.seq(),
                    vid,
                });
                d.view_by_seq.entry((*group, view.seq())).or_insert(vid);
            }
            HistoryEvent::ViewChange { group, view, .. } => {
                let vid = vtab.intern(*group, view);
                current_vid.insert(*group, vid);
                d.views.entry(*group).or_default().push(ViewRec {
                    idx: i,
                    seq: view.seq(),
                    vid,
                });
                d.view_by_seq.entry((*group, view.seq())).or_insert(vid);
            }
            HistoryEvent::Protocol { event, .. } => match event {
                newtop_core::ProtocolEvent::Suspected { group, pair } => {
                    d.suspected.insert((*group, pair.suspect));
                }
                newtop_core::ProtocolEvent::DetectionAdopted { group, detection } => {
                    for pair in detection {
                        d.adopted_at.entry((*group, pair.suspect)).or_insert(i);
                    }
                }
                newtop_core::ProtocolEvent::DepartureCompleted { group } => {
                    d.departure_done.entry(*group).or_insert(i);
                    left.insert(*group);
                }
                _ => {}
            },
            HistoryEvent::GroupActive { .. } => {}
            HistoryEvent::Departed { group, .. } => {
                d.departed.entry(*group).or_insert(i);
            }
        }
    }
    d
}

/// Extends a dense per-message vector to cover newly interned ids.
fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

/// Everything `check_all` indexes once up front.
struct Index {
    procs: Vec<ProcessId>,
    digests: Vec<Digest>,
    mids: MidTable,
    vtab: ViewTable,
    /// cid → `(group, origin)` from the senders' logs.
    mid_info: Vec<Option<(GroupId, ProcessId)>>,
}

impl Index {
    fn build(h: &History) -> Index {
        let procs: Vec<ProcessId> = h.processes().collect();
        let mut mids = MidTable::default();
        let mut vtab = ViewTable::default();
        let mut digests: Vec<Digest> = procs
            .iter()
            .map(|p| digest(h, *p, &mut mids, &mut vtab))
            .collect();
        let m = mids.len();
        for d in &mut digests {
            grow(&mut d.delivered_at, m, NONE_IDX);
            grow(&mut d.delivered_c, m, None);
            grow(&mut d.attr, m, None);
            // Resolve delivery attributions against the installed views.
            for a in d.attr.iter_mut().flatten() {
                if let Some(vid) = d.view_by_seq.get(&(a.0, a.1)) {
                    a.2 = *vid;
                }
            }
        }
        let mut mid_info: Vec<Option<(GroupId, ProcessId)>> = vec![None; m];
        for (p, d) in procs.iter().zip(&digests) {
            for (_, g, cid) in &d.sends {
                mid_info[*cid as usize] = Some((*g, *p));
            }
        }
        Index {
            procs,
            digests,
            mids,
            vtab,
            mid_info,
        }
    }

    fn mid(&self, cid: u32) -> MessageId {
        self.mids.mids[cid as usize]
    }
}

/// Runs every enabled check and returns the violations found (empty = all
/// properties hold on this history).
#[must_use]
pub fn check_all(h: &History, opts: &CheckOptions) -> Vec<Violation> {
    let ix = Index::build(h);
    let mut violations = Vec::new();
    check_duplicates(&ix, &mut violations);
    if opts.total_order {
        check_total_order(&ix, &mut violations);
    }
    if opts.causality {
        check_causality(&ix, &mut violations);
    }
    check_md1(&ix, &mut violations);
    for d in &ix.digests {
        violations.extend(d.exclusion.iter().cloned());
    }
    if opts.views {
        check_vc1(h, &ix, &mut violations);
        check_vc3(&ix, &mut violations);
    }
    if opts.liveness {
        check_liveness(h, &ix, &mut violations);
    }
    violations
}

/// Every tagged message is delivered at most once per process (checked
/// up front so the order comparison below can assume sets, and so a
/// re-delivery bug reports as itself rather than as an order divergence).
fn check_duplicates(ix: &Index, violations: &mut Vec<Violation>) {
    for (p, d) in ix.procs.iter().zip(&ix.digests) {
        let mut seen = BitSet::new(ix.mids.len());
        for rec in &d.deliveries {
            if !seen.insert(rec.cid) {
                violations.push(Violation::DuplicateDelivery {
                    p: *p,
                    group: rec.group,
                    mid: ix.mid(rec.cid),
                });
            }
        }
    }
}

fn check_total_order(ix: &Index, violations: &mut Vec<Violation>) {
    // MD3/MD4 under partitionable membership (§5.2): order is promised
    // between processes *holding the same view* — a member that a cut (or
    // a crash mid-exclusion) left on a dead branch delivered under a view
    // the survivors replaced, and re-sequencing after sequencer fail-over
    // may legitimately reorder there. So the pairwise comparison covers
    // exactly the common messages both sides delivered under the
    // *identical* installed view (same seq and same membership) — with the
    // views interned, one integer compare per message.
    for (ai, a) in ix.procs.iter().enumerate() {
        for (bj, b) in ix.procs.iter().enumerate().skip(ai + 1) {
            let da = &ix.digests[ai];
            let db = &ix.digests[bj];
            let comparable = |cid: u32| -> bool {
                match (da.attr[cid as usize], db.attr[cid as usize]) {
                    (Some((ga, _, va)), Some((gb, _, vb))) => {
                        ga == gb && va != NONE_IDX && vb != NONE_IDX && va == vb
                    }
                    _ => false,
                }
            };
            let project = |d: &Digest| -> Vec<u32> {
                let mut seen = BitSet::new(ix.mids.len());
                d.deliveries
                    .iter()
                    .map(|r| r.cid)
                    .filter(|cid| comparable(*cid) && seen.insert(*cid))
                    .collect()
            };
            let seq_a = project(da);
            let seq_b = project(db);
            if let Some(k) = (0..seq_a.len().min(seq_b.len())).find(|k| seq_a[*k] != seq_b[*k]) {
                violations.push(Violation::TotalOrder {
                    a: *a,
                    b: *b,
                    at: (ix.mid(seq_a[k]), ix.mid(seq_b[k])),
                });
            }
        }
    }
}

/// The happened-before DAG over tagged messages as bitset predecessor sets
/// (transitively closed), indexed by interned id. Only ids that appear in a
/// `Sent` event get a set; `None` elsewhere.
fn causal_predecessors(ix: &Index) -> Vec<Option<BitSet>> {
    let m = ix.mids.len();
    let mut preds: Vec<Option<BitSet>> = (0..m).map(|_| None).collect();
    let mut running = BitSet::new(m);
    for d in &ix.digests {
        // All deliveries and prior sends at this process precede each send:
        // one merged walk of the send/delivery timelines per process.
        for w in &mut running.words {
            *w = 0;
        }
        let mut di = 0usize;
        for (send_idx, _, cid) in &d.sends {
            while di < d.deliveries.len() && d.deliveries[di].idx < *send_idx {
                running.insert(d.deliveries[di].cid);
                di += 1;
            }
            preds[*cid as usize]
                .get_or_insert_with(|| BitSet::new(m))
                .union_with(&running);
            running.insert(*cid);
        }
    }
    // Transitive closure: bitset fixpoint (message counts per run are small,
    // so this converges in a handful of rounds).
    let sent: Vec<u32> = (0..m as u32)
        .filter(|c| preds[*c as usize].is_some())
        .collect();
    let mut scratch: Vec<u32> = Vec::new();
    loop {
        let mut changed = false;
        for c in &sent {
            // Take `c`'s set out so predecessors can be read by reference
            // (no per-edge clones); the snapshot of its bits taken before
            // the unions matches the per-round semantics of the fixpoint.
            let mut acc = preds[*c as usize].take().expect("sent id");
            scratch.clear();
            scratch.extend(acc.iter());
            for p in &scratch {
                if *p == *c {
                    continue;
                }
                if let Some(more) = preds[*p as usize].as_ref() {
                    changed |= acc.union_with(more);
                }
            }
            preds[*c as usize] = Some(acc);
        }
        if !changed {
            break;
        }
    }
    preds
}

fn check_causality(ix: &Index, violations: &mut Vec<Violation>) {
    let preds = causal_predecessors(ix);
    // Messages whose delivered numbers disagree across processes were
    // re-sequenced by a fail-over (the old relay was agreed-discarded and
    // the message re-homed under a new number in a new view). Their
    // delivery position no longer tracks the single-clock causal order
    // (CA2), so the prefix obligation is waived for them as causes; the
    // view-scoped order checks still constrain them.
    let m = ix.mids.len();
    let mut resequenced = BitSet::new(m);
    let mut first_c: Vec<Option<newtop_types::Msn>> = vec![None; m];
    for d in &ix.digests {
        for (cid, c) in d.delivered_c.iter().enumerate() {
            let Some(c) = c else { continue };
            match first_c[cid] {
                None => first_c[cid] = Some(*c),
                Some(prev) if prev != *c => {
                    resequenced.insert(cid as u32);
                }
                Some(_) => {}
            }
        }
    }
    for (p, d) in ix.procs.iter().zip(&ix.digests) {
        // Per-group cursor into the view timeline: deliveries are walked in
        // log order, so "current view at this delivery" advances
        // monotonically per group.
        let mut cursor: BTreeMap<GroupId, usize> = BTreeMap::new();
        for rec in &d.deliveries {
            let eff_idx = rec.idx;
            let Some(causes) = preds[rec.cid as usize].as_ref() else {
                continue;
            };
            for cause in causes.iter() {
                if resequenced.contains(cause) {
                    continue;
                }
                let Some((cause_group, cause_origin)) = ix.mid_info[cause as usize] else {
                    continue;
                };
                // MD5/MD5': the causal-prefix obligation is conditioned (in
                // both the same-group and the cross-group case) on the
                // cause's sender still being in p's current view of the
                // cause's group when the effect is delivered. Once the
                // sender has been excluded, the step-(viii) agreement may
                // have discarded the cause ("even though it has been agreed
                // that m was sent before Pk failed") — uniformly at every
                // survivor, which VC3 and the pairwise order checks verify.
                let Some(views) = d.views.get(&cause_group) else {
                    continue; // never a member of that group
                };
                if d.departure_done
                    .get(&cause_group)
                    .is_some_and(|di| *di <= eff_idx)
                {
                    continue; // already left the cause's group: no view,
                              // no obligation (§3)
                }
                let cur = cursor.entry(cause_group).or_insert(0);
                while *cur + 1 < views.len() && views[*cur + 1].idx <= eff_idx {
                    *cur += 1;
                }
                if views[*cur].idx > eff_idx {
                    continue; // first view installs after this delivery
                }
                let view = ix.vtab.view(views[*cur].vid);
                if !view.contains(cause_origin) {
                    continue; // sender excluded: no obligation
                }
                if d.adopted_at
                    .get(&(cause_group, cause_origin))
                    .is_some_and(|ai| *ai <= eff_idx)
                {
                    // Exclusion agreed though not yet installed (the view
                    // change waits behind its delivery barrier): the
                    // sender's undelivered tail is already agreed-discarded
                    // (step (viii)), so the prefix obligation has ended.
                    continue;
                }
                if d.delivered_at[cause as usize] >= eff_idx {
                    violations.push(Violation::CausalPrefix {
                        p: *p,
                        cause: ix.mid(cause),
                        effect: ix.mid(rec.cid),
                    });
                }
            }
        }
    }
}

fn check_md1(ix: &Index, violations: &mut Vec<Violation>) {
    for (p, d) in ix.procs.iter().zip(&ix.digests) {
        for rec in &d.deliveries {
            let Some((_, origin)) = ix.mid_info[rec.cid as usize] else {
                continue;
            };
            let Some(vid) = d.view_by_seq.get(&(rec.group, rec.view_seq)) else {
                continue;
            };
            if !ix.vtab.view(*vid).contains(origin) {
                violations.push(Violation::SenderNotInView {
                    p: *p,
                    mid: Some(ix.mid(rec.cid)),
                    group: rec.group,
                    view_seq: rec.view_seq,
                });
            }
        }
    }
}

fn check_vc1(h: &History, ix: &Index, violations: &mut Vec<Violation>) {
    for (ai, a) in ix.procs.iter().enumerate() {
        for (bj, b) in ix.procs.iter().enumerate().skip(ai + 1) {
            if h.is_crashed(*a) || h.is_crashed(*b) {
                continue;
            }
            let da = &ix.digests[ai];
            let db = &ix.digests[bj];
            let groups: BTreeSet<GroupId> =
                da.views.keys().chain(db.views.keys()).copied().collect();
            for g in groups {
                let (Some(va), Some(vb)) = (da.views.get(&g), db.views.get(&g)) else {
                    continue;
                };
                if da.suspected.contains(&(g, *b)) || db.suspected.contains(&(g, *a)) {
                    continue; // VC1 precondition broken: they suspected each other
                }
                let shorter = va.len().min(vb.len());
                for k in 0..shorter {
                    if va[k].vid != vb[k].vid {
                        violations.push(Violation::ViewSequence {
                            a: *a,
                            b: *b,
                            group: g,
                            seq: va[k].seq,
                        });
                        break;
                    }
                }
            }
        }
    }
}

fn check_vc3(ix: &Index, violations: &mut Vec<Violation>) {
    let empty: Vec<(u32, u32)> = Vec::new();
    for (ai, a) in ix.procs.iter().enumerate() {
        for (bj, b) in ix.procs.iter().enumerate().skip(ai + 1) {
            let da = &ix.digests[ai];
            let db = &ix.digests[bj];
            for (g, va) in &da.views {
                let Some(vb) = db.views.get(g) else {
                    continue;
                };
                let ga = da.by_group.get(g).unwrap_or(&empty);
                let gb = db.by_group.get(g).unwrap_or(&empty);
                // Closed intervals: view r and r+1 present and identical at both.
                for w in 0..va.len().saturating_sub(1) {
                    let (r, r_next) = (&va[w], &va[w + 1]);
                    let Some(wb) = vb.iter().position(|v| v.vid == r.vid) else {
                        continue;
                    };
                    if wb + 1 >= vb.len() || vb[wb + 1].vid != r_next.vid {
                        continue;
                    }
                    // VC3 precondition: the pair stayed mutually connected
                    // while closing the interval. A confirmed exclusion of
                    // the peer adopted before the closing install means the
                    // views diverged mid-interval (partition sides close a
                    // shared view independently; the paper guarantees
                    // agreement only within a connected component). The
                    // exemption is bracket-scoped and keyed on *adopted*
                    // detections — refuted suspicions never reach adoption,
                    // so healthy-run intervals keep full VC3 strength.
                    let a_cut = da
                        .adopted_at
                        .get(&(*g, *b))
                        .is_some_and(|i| *i <= r_next.idx);
                    let b_cut = db
                        .adopted_at
                        .get(&(*g, *a))
                        .is_some_and(|i| *i <= vb[wb + 1].idx);
                    if a_cut || b_cut {
                        continue;
                    }
                    let set = |dels: &[(u32, u32)], lo: u32, hi: u32| -> BitSet {
                        let mut s = BitSet::new(ix.mids.len());
                        let from = dels.partition_point(|(i, _)| *i <= lo);
                        for (i, cid) in &dels[from..] {
                            if *i >= hi {
                                break;
                            }
                            s.insert(*cid);
                        }
                        s
                    };
                    let sa = set(ga, r.idx, r_next.idx);
                    let sb = set(gb, vb[wb].idx, vb[wb + 1].idx);
                    if sa != sb {
                        violations.push(Violation::DeliverySet {
                            a: *a,
                            b: *b,
                            group: *g,
                            seq: r.seq,
                        });
                    }
                }
            }
        }
    }
}

fn check_liveness(h: &History, ix: &Index, violations: &mut Vec<Violation>) {
    // For each group: survivors with identical final views must hold equal
    // delivery sets that include everything sent by final-view members.
    let groups: BTreeSet<GroupId> = ix
        .digests
        .iter()
        .flat_map(|d| d.views.keys().copied())
        .collect();
    let proc_pos: BTreeMap<ProcessId, usize> =
        ix.procs.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    for g in groups {
        for (pi, p) in ix.procs.iter().enumerate() {
            let d = &ix.digests[pi];
            if h.is_crashed(*p) || !d.views.contains_key(&g) {
                continue;
            }
            if d.departed.contains_key(&g) {
                continue; // §3: no view, no obligations after leaving
            }
            let Some(final_view) = d.views.get(&g).and_then(|v| v.last()) else {
                continue;
            };
            let final_view = ix.vtab.view(final_view.vid);
            if !final_view.contains(*p) {
                continue;
            }
            let mut delivered = BitSet::new(ix.mids.len());
            if let Some(dels) = d.by_group.get(&g) {
                for (_, cid) in dels {
                    delivered.insert(*cid);
                }
            }
            // Everything sent by a member of p's final view must be there.
            for q in final_view.members() {
                let Some(qi) = proc_pos.get(q) else { continue };
                for (_, sg, cid) in &ix.digests[*qi].sends {
                    if *sg == g && !delivered.contains(*cid) {
                        violations.push(Violation::Liveness {
                            p: *p,
                            group: g,
                            mid: ix.mid(*cid),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimCluster;
    use newtop_sim::NetConfig;
    use newtop_types::{GroupConfig, Instant, OrderMode, Span};

    fn run_simple(mode: OrderMode) -> History {
        let mut c = SimCluster::new(3, NetConfig::new(7));
        c.bootstrap_group(GroupId(1), &[1, 2, 3], GroupConfig::new(mode));
        for k in 0..6u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 500),
                (k % 3) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.run_for(Span::from_millis(500));
        c.history()
    }

    #[test]
    fn clean_symmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Symmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        // And the run actually delivered things.
        assert_eq!(h.delivered_mids(ProcessId(1), GroupId(1)).len(), 6);
    }

    #[test]
    fn clean_asymmetric_run_passes_all_checks() {
        let h = run_simple(OrderMode::Asymmetric);
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn checker_catches_fabricated_order_inversion() {
        let mut h = run_simple(OrderMode::Symmetric);
        // Swap two deliveries at P2 to fabricate an MD4 violation.
        let evs = h.events.get_mut(&ProcessId(2)).unwrap();
        let idxs: Vec<usize> = evs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, HistoryEvent::Delivered { .. }))
            .map(|(i, _)| i)
            .collect();
        evs.swap(idxs[0], idxs[1]);
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter().any(|x| matches!(x, Violation::TotalOrder { .. })),
            "fabricated inversion must be caught, got {v:?}"
        );
    }

    #[test]
    fn checker_catches_fabricated_missing_delivery() {
        let mut h = run_simple(OrderMode::Symmetric);
        let evs = h.events.get_mut(&ProcessId(3)).unwrap();
        let idx = evs
            .iter()
            .position(|e| matches!(e, HistoryEvent::Delivered { .. }))
            .unwrap();
        evs.remove(idx);
        let v = check_all(&h, &CheckOptions::default());
        assert!(!v.is_empty(), "dropped delivery must violate something");
    }

    #[test]
    fn checker_catches_fabricated_delivery_after_exclusion() {
        use newtop_core::Delivery;
        use newtop_types::{Msn, ProcessId, View, ViewSeq};
        let mut h = run_simple(OrderMode::Symmetric);
        // Fabricate at P1: a view change that excludes P2, followed by a
        // delivery originated by P2.
        let evs = h.events.get_mut(&ProcessId(1)).unwrap();
        let shrunk = View::initial([ProcessId(1), ProcessId(3)]);
        evs.push(HistoryEvent::ViewChange {
            at: Instant::from_micros(999_000),
            group: GroupId(1),
            view: shrunk.clone(),
            signed: newtop_types::SignedView::new(shrunk.iter(), 1),
        });
        evs.push(HistoryEvent::Delivered {
            at: Instant::from_micros(999_500),
            delivery: Delivery {
                group: GroupId(1),
                origin: ProcessId(2),
                c: Msn(99),
                view_seq: ViewSeq(1),
                payload: MessageId(99).to_payload(),
            },
            mid: Some(MessageId(99)),
        });
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DeliveryAfterExclusion { .. })),
            "late delivery from an excluded origin must be caught, got {v:?}"
        );
    }

    #[test]
    fn checker_catches_fabricated_delivery_after_departure() {
        use newtop_core::Delivery;
        use newtop_types::{Msn, ProcessId, ViewSeq};
        let mut h = run_simple(OrderMode::Symmetric);
        let evs = h.events.get_mut(&ProcessId(2)).unwrap();
        evs.push(HistoryEvent::Departed {
            at: Instant::from_micros(999_000),
            group: GroupId(1),
        });
        evs.push(HistoryEvent::Protocol {
            at: Instant::from_micros(999_100),
            event: newtop_core::ProtocolEvent::DepartureCompleted { group: GroupId(1) },
        });
        evs.push(HistoryEvent::Delivered {
            at: Instant::from_micros(999_500),
            delivery: Delivery {
                group: GroupId(1),
                origin: ProcessId(1),
                c: Msn(98),
                view_seq: ViewSeq(0),
                payload: MessageId(98).to_payload(),
            },
            mid: Some(MessageId(98)),
        });
        let v = check_all(&h, &CheckOptions::default());
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DeliveryAfterExclusion { .. })),
            "delivery after departure must be caught, got {v:?}"
        );
    }

    #[test]
    fn crash_run_passes_with_liveness_scoped_to_survivors() {
        let mut c = SimCluster::new(4, NetConfig::new(9));
        c.bootstrap_group(
            GroupId(1),
            &[1, 2, 3, 4],
            GroupConfig::new(OrderMode::Symmetric),
        );
        for k in 0..4u64 {
            c.schedule_send(
                Instant::from_micros(1000 + k * 300),
                (k % 4) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        c.schedule_crash(Instant::from_millis_ext(50), 4);
        c.run_for(Span::from_millis(1500));
        let h = c.history();
        let v = check_all(&h, &CheckOptions::default());
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(h.is_crashed(ProcessId(4)));
    }

    #[test]
    fn bitset_insert_iter_union() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(64));
        assert!(a.insert(129));
        assert!(!a.insert(64));
        assert!(a.contains(129) && !a.contains(1));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut b = BitSet::new(130);
        b.insert(7);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 7, 64, 129]);
    }

    trait InstantExt {
        fn from_millis_ext(ms: u64) -> Instant;
    }
    impl InstantExt for Instant {
        fn from_millis_ext(ms: u64) -> Instant {
            Instant::from_micros(ms * 1000)
        }
    }
}
