//! Frame-aware chaos proxy for the TCP data plane (`newtop-exp proxy`).
//!
//! The proxy sits between a dialing peer and its upstream: the dialer
//! is pointed at the proxy's listen address, and every connection is
//! tunneled to the real peer with seeded interference applied to the
//! **data direction** (dialer → upstream, the direction that carries
//! addressed frame records). The proxy understands the peer wire
//! format, so chaos acts on whole records, never on partial bytes:
//!
//! * **drop** — a record vanishes. The upstream sees a sequence gap,
//!   severs the connection, and the runtime's reconnect/resume path
//!   retransmits from the last cumulative ack;
//! * **delay** — a record (and everything behind it) is held for a
//!   bounded random time, stressing ω-null timers and batching;
//! * **reorder** — a record is held back and re-emitted after its
//!   successor. The upstream sees the successor's higher sequence
//!   first — a gap — so this too resolves through sever + resume;
//! * **partition** — for a configured window, established tunnels are
//!   severed and new ones refused, then the window heals.
//!
//! The ack direction (upstream → dialer) is pumped verbatim: acks are
//! cumulative, so interfering with them only changes how much the
//! sender retains, never correctness. Every interference mode resolves
//! to *delivery-exact* behavior by construction — the protocol checker
//! must stay green under any proxy schedule.

use newtop_types::peer::{addressed_frame_into, PeerFrameDecoder, HELLO_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;

/// What to interfere with, and how hard.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Tunnels: connections accepted on `.0` are forwarded to `.1`.
    pub routes: Vec<(SocketAddr, SocketAddr)>,
    /// Seed for the interference schedule (deterministic per run).
    pub seed: u64,
    /// Percent of data records dropped outright (0–100).
    pub drop_pct: u8,
    /// Upper bound on the random per-record hold, in milliseconds.
    pub delay_ms: u64,
    /// Percent of data records held back past their successor (0–100).
    pub reorder_pct: u8,
    /// Percent of data records emitted twice back-to-back (0–100). The
    /// upstream sees the same sequence again and must drop it by
    /// sequence — the receive path's dedup guarantee.
    pub dup_pct: u8,
    /// When (after proxy start) a partition window opens, if any.
    pub partition_at: Option<Duration>,
    /// How long the partition window lasts.
    pub partition_for: Duration,
    /// Bandwidth shaping: cap each tunnel's data direction at this many
    /// kilobytes per second with a token bucket (`None` = unshaped). A
    /// record over budget stalls the pump — and everything queued behind
    /// it — exactly like a saturated WAN uplink; acks stay unshaped, so
    /// only the data path congests.
    pub rate_kbps: Option<u64>,
}

impl ProxyConfig {
    /// A pass-through proxy for `routes` — no interference until the
    /// chaos knobs are raised.
    #[must_use]
    pub fn new(routes: Vec<(SocketAddr, SocketAddr)>) -> ProxyConfig {
        ProxyConfig {
            routes,
            seed: 0,
            drop_pct: 0,
            delay_ms: 0,
            reorder_pct: 0,
            dup_pct: 0,
            partition_at: None,
            partition_for: Duration::from_secs(2),
            rate_kbps: None,
        }
    }
}

/// A wall-clock token bucket shaping one tunnel's data direction.
///
/// Tokens are bytes; the bucket refills at the configured rate and holds
/// at most ~50 ms of it (floored at 8 KiB so one whole record always
/// fits). Paying for a record that overdraws the bucket sleeps off the
/// deficit, which stalls the pump — the back-pressure a real capped
/// uplink exerts.
struct Shaper {
    bytes_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl Shaper {
    fn new(kbps: u64) -> Shaper {
        #[allow(clippy::cast_precision_loss)]
        let rate = (kbps.max(1) * 1000) as f64;
        Shaper {
            bytes_per_sec: rate,
            burst: (rate / 20.0).max(8_192.0),
            tokens: (rate / 20.0).max(8_192.0),
            last: Instant::now(),
        }
    }

    fn pace(&mut self, len: usize) {
        #[allow(clippy::cast_precision_loss)]
        let cost = len as f64;
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * self.bytes_per_sec;
        self.tokens = (self.tokens + refill).min(self.burst);
        self.last = now;
        self.tokens -= cost;
        if self.tokens < 0.0 {
            std::thread::sleep(Duration::from_secs_f64(-self.tokens / self.bytes_per_sec));
        }
    }
}

/// A running proxy; dropping it without [`ProxyHandle::stop`] leaves
/// the threads running until process exit.
pub struct ProxyHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Data records forwarded across all tunnels.
    pub forwarded: Arc<AtomicU64>,
    /// Data records deliberately dropped.
    pub dropped: Arc<AtomicU64>,
    /// Data records deliberately duplicated.
    pub duplicated: Arc<AtomicU64>,
}

impl ProxyHandle {
    /// Severs every tunnel and joins all proxy threads.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Shared interference tallies, one set per proxy.
#[derive(Clone, Default)]
struct Tallies {
    forwarded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    duplicated: Arc<AtomicU64>,
}

/// Is `elapsed` inside the configured partition window?
fn partitioned(cfg: &ProxyConfig, started: Instant) -> bool {
    match cfg.partition_at {
        Some(at) => {
            let elapsed = started.elapsed();
            elapsed >= at && elapsed < at + cfg.partition_for
        }
        None => false,
    }
}

/// Binds every route and starts forwarding until [`ProxyHandle::stop`].
///
/// # Errors
///
/// A listen address that cannot be bound.
pub fn run_proxy(cfg: &ProxyConfig) -> std::io::Result<ProxyHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let tallies = Tallies::default();
    let mut threads = Vec::new();
    for (i, &(listen, upstream)) in cfg.routes.iter().enumerate() {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        let tallies = tallies.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("newtop-proxy-{i}"))
                .spawn(move || {
                    route_main(
                        &listener, upstream, &cfg, i as u64, started, &stop, &tallies,
                    );
                })
                .expect("spawn proxy route"),
        );
    }
    Ok(ProxyHandle {
        stop,
        threads,
        forwarded: tallies.forwarded,
        dropped: tallies.dropped,
        duplicated: tallies.duplicated,
    })
}

/// Accept loop for one route; tunnels are severed and refused while a
/// partition window is open.
fn route_main(
    listener: &TcpListener,
    upstream: SocketAddr,
    cfg: &ProxyConfig,
    route_idx: u64,
    started: Instant,
    stop: &Arc<AtomicBool>,
    tallies: &Tallies,
) {
    let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut conn_idx = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _)) => {
                if partitioned(cfg, started) {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                conn_idx += 1;
                // One deterministic schedule per (seed, route, conn):
                // reconnects after chaos-induced severs see fresh but
                // reproducible interference.
                let conn_seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(route_idx << 32 | conn_idx);
                let cfg = cfg.clone();
                let stop = Arc::clone(stop);
                let tallies = tallies.clone();
                let pump = std::thread::Builder::new()
                    .name("newtop-proxy-pump".into())
                    .spawn(move || {
                        tunnel(client, server, &cfg, conn_seed, started, &stop, &tallies);
                    })
                    .expect("spawn proxy pump");
                pumps.lock().expect("pump list").push(pump);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let pumps = std::mem::take(&mut *pumps.lock().expect("pump list"));
    for p in pumps {
        let _ = p.join();
    }
}

/// Reads exactly `want` bytes under the socket's read timeout, polling
/// the stop flag between chunks. `None` on EOF/error/stop.
fn read_exactly(mut stream: &TcpStream, want: usize, stop: &AtomicBool) -> Option<Vec<u8>> {
    let mut out = vec![0u8; want];
    let mut got = 0usize;
    while got < want {
        if stop.load(Ordering::Relaxed) {
            return None;
        }
        match stream.read(&mut out[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return None,
        }
    }
    Some(out)
}

/// One accepted connection: hello verbatim, then the chaotic data pump
/// and the verbatim ack pump, until either side closes, a partition
/// opens, or the proxy stops.
fn tunnel(
    client: TcpStream,
    server: TcpStream,
    cfg: &ProxyConfig,
    conn_seed: u64,
    started: Instant,
    stop: &Arc<AtomicBool>,
    tallies: &Tallies,
) {
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let _ = client.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(25)));
    // The dialer speaks first; its hello must arrive unmodified.
    let Some(hello) = read_exactly(&client, HELLO_LEN, stop) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    if (&server).write_all(&hello).is_err() {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    // Ack direction: upstream → dialer, verbatim bytes.
    let reverse = {
        let (Ok(server_rd), Ok(client_wr)) = (server.try_clone(), client.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let stop = Arc::clone(stop);
        std::thread::Builder::new()
            .name("newtop-proxy-ack".into())
            .spawn(move || raw_pump(&server_rd, &client_wr, &stop))
            .expect("spawn ack pump")
    };
    chaos_pump(&client, &server, cfg, conn_seed, started, stop, tallies);
    // Sever both halves so the ack pump unblocks, then reap it.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = reverse.join();
}

/// Copies bytes verbatim until EOF, error or stop.
fn raw_pump(mut rd: &TcpStream, mut wr: &TcpStream, stop: &AtomicBool) {
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        match rd.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if wr.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

/// The data direction: parse addressed records, apply the seeded
/// schedule, re-encode survivors in emission order.
fn chaos_pump(
    mut client: &TcpStream,
    mut server: &TcpStream,
    cfg: &ProxyConfig,
    conn_seed: u64,
    started: Instant,
    stop: &AtomicBool,
    tallies: &Tallies,
) {
    let mut rng = StdRng::seed_from_u64(conn_seed);
    let mut dec = PeerFrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut out = BytesMut::new();
    let mut shaper = cfg.rate_kbps.map(Shaper::new);
    // At most one record rides in the hold-back slot; emitting it after
    // the next record is exactly one reordering.
    let mut held: Option<newtop_types::peer::PeerFrame> = None;
    'pump: loop {
        if stop.load(Ordering::Relaxed) || partitioned(cfg, started) {
            return;
        }
        let n = match client.read(&mut buf) {
            Ok(0) => break 'pump,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        };
        dec.push(&buf[..n]);
        loop {
            let rec = match dec.next_record() {
                Ok(Some(rec)) => rec,
                Ok(None) => break,
                // A malformed stream cannot be re-framed; sever it.
                Err(_) => return,
            };
            if cfg.drop_pct > 0 && rng.gen_range(0u32..100) < u32::from(cfg.drop_pct) {
                tallies.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if cfg.delay_ms > 0 {
                let hold = rng.gen_range(0..=cfg.delay_ms);
                if hold > 0 {
                    std::thread::sleep(Duration::from_millis(hold));
                }
            }
            let mut emit = Vec::with_capacity(2);
            if cfg.reorder_pct > 0
                && held.is_none()
                && rng.gen_range(0u32..100) < u32::from(cfg.reorder_pct)
            {
                held = Some(rec);
            } else {
                emit.push(rec);
                if let Some(h) = held.take() {
                    emit.push(h);
                }
            }
            for rec in emit {
                out.clear();
                addressed_frame_into(rec.dest, rec.seq, &rec.frame, &mut out);
                // Duplication: the same encoded record twice back to
                // back. The upstream's per-link sequence dedup must
                // swallow the echo, so this is correctness-neutral by
                // construction — which is exactly what it tests.
                let copies = if cfg.dup_pct > 0 && rng.gen_range(0u32..100) < u32::from(cfg.dup_pct)
                {
                    tallies.duplicated.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    if let Some(shaper) = &mut shaper {
                        shaper.pace(out.len());
                    }
                    if server.write_all(&out).is_err() {
                        return;
                    }
                }
                tallies.forwarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Client EOF: flush a straggler so a clean close loses nothing.
    if let Some(rec) = held.take() {
        out.clear();
        addressed_frame_into(rec.dest, rec.seq, &rec.frame, &mut out);
        if server.write_all(&out).is_ok() {
            tallies.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_window_opens_and_heals() {
        let mut cfg = ProxyConfig::new(Vec::new());
        cfg.partition_at = Some(Duration::from_millis(100));
        cfg.partition_for = Duration::from_millis(50);
        let t0 = Instant::now();
        assert!(!partitioned(&cfg, t0), "before the window");
        let mid = t0 - Duration::from_millis(120);
        assert!(partitioned(&cfg, mid), "inside the window");
        let after = t0 - Duration::from_millis(200);
        assert!(!partitioned(&cfg, after), "after the window heals");
    }

    #[test]
    fn passthrough_config_has_no_interference() {
        let cfg = ProxyConfig::new(Vec::new());
        assert_eq!(cfg.drop_pct, 0);
        assert_eq!(cfg.delay_ms, 0);
        assert_eq!(cfg.reorder_pct, 0);
        assert_eq!(cfg.dup_pct, 0);
        assert!(cfg.partition_at.is_none());
    }

    /// The token bucket alone: a burst-sized prefix is free, every byte
    /// past it is paid for at the configured rate.
    #[test]
    fn shaper_paces_past_the_burst() {
        let mut shaper = Shaper::new(100); // 100 KB/s, burst 8 KiB
        let start = Instant::now();
        // 24 KiB through an 8 KiB burst: ≥ 16 KiB at 100 KB/s ≈ 160 ms.
        for _ in 0..6 {
            shaper.pace(4 * 1024);
        }
        assert!(start.elapsed() >= Duration::from_millis(140));
    }

    /// A shaped tunnel delivers a multi-record stream intact but no
    /// faster than the configured rate (the satellite's acceptance:
    /// shaping changes timing, never bytes).
    #[test]
    fn rate_limited_tunnel_shapes_but_preserves_the_stream() {
        use newtop_types::peer::encode_hello;
        use newtop_types::peer::Hello;
        use newtop_types::ProcessId;
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("addr");
        let listen = TcpListener::bind("127.0.0.1:0").expect("probe listen");
        let listen_addr = listen.local_addr().expect("addr");
        drop(listen);
        let mut cfg = ProxyConfig::new(vec![(listen_addr, up_addr)]);
        cfg.rate_kbps = Some(50); // 50 KB/s, burst 8 KiB
        let handle = run_proxy(&cfg).expect("proxy starts");
        let mut client = TcpStream::connect(listen_addr).expect("dial proxy");
        let (mut server, _) = upstream.accept().expect("accept tunnel");
        server
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let hello = encode_hello(&Hello {
            peer: 0,
            nonce: 7,
            resume: 0,
        });
        client.write_all(&hello).expect("hello");
        // ~18 KiB of records through an 8 KiB burst at 50 KB/s: the tail
        // ~10 KiB costs ≥ 200 ms of shaping.
        let body = [0x55u8; 2048];
        let mut frame = vec![0x80u8, 0x10]; // varint 2048
        frame.extend_from_slice(&body);
        let mut want = hello.to_vec();
        let mut rec = BytesMut::new();
        let t0 = Instant::now();
        for seq in 1..=9u64 {
            rec.clear();
            addressed_frame_into(ProcessId(2), seq, &frame, &mut rec);
            client.write_all(&rec).expect("record");
            want.extend_from_slice(&rec);
        }
        client.flush().expect("flush");
        let mut got = vec![0u8; want.len()];
        server.read_exact(&mut got).expect("shaped stream");
        assert!(
            t0.elapsed() >= Duration::from_millis(150),
            "9 records crossed a 50 KB/s shaper in {:?}",
            t0.elapsed()
        );
        assert_eq!(got, want, "shaping must never corrupt the stream");
        assert_eq!(handle.dropped.load(Ordering::Relaxed), 0);
        drop(client);
        drop(server);
        handle.stop();
    }

    /// A dup-100 proxy emits every data record twice: the upstream
    /// byte stream is exactly two copies of each encoded record, and
    /// the duplicated counter matches the forwarded one.
    #[test]
    fn dup_mode_doubles_records_on_the_wire() {
        use newtop_types::peer::encode_hello;
        use newtop_types::peer::Hello;
        use newtop_types::ProcessId;
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("addr");
        let listen = TcpListener::bind("127.0.0.1:0").expect("probe listen");
        let listen_addr = listen.local_addr().expect("addr");
        drop(listen); // free the port for the proxy
        let mut cfg = ProxyConfig::new(vec![(listen_addr, up_addr)]);
        cfg.dup_pct = 100;
        let handle = run_proxy(&cfg).expect("proxy starts");
        let mut client = TcpStream::connect(listen_addr).expect("dial proxy");
        let (mut server, _) = upstream.accept().expect("accept tunnel");
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let hello = encode_hello(&Hello {
            peer: 0,
            nonce: 7,
            resume: 0,
        });
        client.write_all(&hello).expect("hello");
        // A minimal valid wire frame: varint body length, then body.
        let frame = [3u8, b'x', b'y', b'z'];
        let mut rec = BytesMut::new();
        addressed_frame_into(ProcessId(2), 1, &frame, &mut rec);
        client.write_all(&rec).expect("record");
        client.flush().expect("flush");
        // Expect hello + two copies of the record at the upstream.
        let mut want = hello.to_vec();
        want.extend_from_slice(&rec);
        want.extend_from_slice(&rec);
        let mut got = vec![0u8; want.len()];
        server.read_exact(&mut got).expect("doubled stream");
        assert_eq!(got, want, "record must arrive exactly twice");
        // The pump bumps the tallies around the socket writes; the bytes
        // can land here before the counters do, so poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.forwarded.load(Ordering::Relaxed) < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.duplicated.load(Ordering::Relaxed), 1);
        assert_eq!(handle.forwarded.load(Ordering::Relaxed), 1);
        drop(client);
        drop(server);
        handle.stop();
    }
}
