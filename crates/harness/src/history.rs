//! Recorded observable history of a simulated run.

use newtop_core::{Delivery, ProtocolEvent};
use newtop_types::{GroupId, Instant, ProcessId, SignedView, View, ViewSeq};
use std::collections::BTreeMap;

/// Identity of an application message across the whole run.
///
/// Workload payloads embed this tag (eight big-endian bytes), so a message
/// keeps one identity from the `multicast` call through every delivery —
/// including sequencer relays, where the on-wire number is assigned late.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl MessageId {
    /// Encodes the id as a payload.
    #[must_use]
    pub fn to_payload(self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.0.to_be_bytes())
    }

    /// Decodes an id from a payload (must be at least eight bytes).
    #[must_use]
    pub fn from_payload(p: &[u8]) -> Option<MessageId> {
        let bytes: [u8; 8] = p.get(..8)?.try_into().ok()?;
        Some(MessageId(u64::from_be_bytes(bytes)))
    }
}

/// One observable event at one process, in emission order.
#[derive(Debug, Clone)]
pub enum HistoryEvent {
    /// The group was installed with this initial view (bootstrap or
    /// formation activation).
    InitialView {
        /// Group concerned.
        group: GroupId,
        /// The initial membership `V0`.
        view: View,
    },
    /// The application asked to multicast `mid` (it may still be deferred
    /// by blocking rules at this point).
    Sent {
        /// When the request was accepted.
        at: Instant,
        /// Group addressed.
        group: GroupId,
        /// Message identity.
        mid: MessageId,
    },
    /// An application delivery.
    Delivered {
        /// When it was delivered.
        at: Instant,
        /// The delivery (group, origin, number, view, payload).
        delivery: Delivery,
        /// Message identity parsed from the payload (None for payloads not
        /// produced by the workload tagger).
        mid: Option<MessageId>,
    },
    /// A view change.
    ViewChange {
        /// When it was installed.
        at: Instant,
        /// Group concerned.
        group: GroupId,
        /// The new view.
        view: View,
        /// Its §6 signed form.
        signed: SignedView,
    },
    /// Formation completed.
    GroupActive {
        /// When.
        at: Instant,
        /// Group concerned.
        group: GroupId,
    },
    /// A membership protocol event.
    Protocol {
        /// When.
        at: Instant,
        /// The event.
        event: ProtocolEvent,
    },
    /// This process voluntarily departed the group (it keeps no view
    /// afterwards, §3 — liveness obligations end here).
    Departed {
        /// When.
        at: Instant,
        /// The group left.
        group: GroupId,
    },
}

/// Everything recorded about one run: per-process ordered event logs.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Ordered events per process.
    pub events: BTreeMap<ProcessId, Vec<HistoryEvent>>,
    /// Processes crashed by the fault schedule (exempt from liveness).
    pub crashed: Vec<ProcessId>,
}

impl History {
    /// The processes recorded.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.events.keys().copied()
    }

    /// Ordered delivery records of `p` (all groups).
    #[must_use]
    pub fn deliveries(&self, p: ProcessId) -> Vec<(Instant, Delivery, Option<MessageId>)> {
        self.events
            .get(&p)
            .map(|evs| {
                evs.iter()
                    .filter_map(|e| match e {
                        HistoryEvent::Delivered { at, delivery, mid } => {
                            Some((*at, delivery.clone(), *mid))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Delivered message ids of `p` in `group`, in delivery order.
    #[must_use]
    pub fn delivered_mids(&self, p: ProcessId, group: GroupId) -> Vec<MessageId> {
        self.deliveries(p)
            .into_iter()
            .filter(|(_, d, _)| d.group == group)
            .filter_map(|(_, _, mid)| mid)
            .collect()
    }

    /// Delivered message ids of `p` across all groups, in delivery order.
    #[must_use]
    pub fn delivered_mids_all(&self, p: ProcessId) -> Vec<MessageId> {
        self.deliveries(p)
            .into_iter()
            .filter_map(|(_, _, mid)| mid)
            .collect()
    }

    /// The view sequence → members map of `p` for `group`, including `V0`.
    #[must_use]
    pub fn views_of(&self, p: ProcessId, group: GroupId) -> BTreeMap<ViewSeq, View> {
        let mut map = BTreeMap::new();
        if let Some(evs) = self.events.get(&p) {
            for e in evs {
                match e {
                    HistoryEvent::InitialView { group: g, view } if *g == group => {
                        map.insert(view.seq(), view.clone());
                    }
                    HistoryEvent::ViewChange { group: g, view, .. } if *g == group => {
                        map.insert(view.seq(), view.clone());
                    }
                    _ => {}
                }
            }
        }
        map
    }

    /// All message ids `p` reported as sent, with their groups.
    #[must_use]
    pub fn sent_mids(&self, p: ProcessId) -> Vec<(GroupId, MessageId)> {
        self.events
            .get(&p)
            .map(|evs| {
                evs.iter()
                    .filter_map(|e| match e {
                        HistoryEvent::Sent { group, mid, .. } => Some((*group, *mid)),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether `p` crashed during the run.
    #[must_use]
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed.contains(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_id_payload_roundtrip() {
        let mid = MessageId(0xDEAD_BEEF_0042);
        let p = mid.to_payload();
        assert_eq!(MessageId::from_payload(&p), Some(mid));
        assert_eq!(MessageId::from_payload(b"short"), None);
    }

    #[test]
    fn empty_history_queries_are_empty() {
        let h = History::default();
        assert_eq!(h.deliveries(ProcessId(1)).len(), 0);
        assert!(h.views_of(ProcessId(1), GroupId(1)).is_empty());
        assert!(!h.is_crashed(ProcessId(1)));
    }
}
