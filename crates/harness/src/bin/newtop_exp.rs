//! `newtop-exp` — runs the reproduction's experiment suite and prints the
//! tables recorded in EXPERIMENTS.md.
//!
//! ```text
//! newtop-exp all            # run every experiment (full sweeps)
//! newtop-exp e3 e6          # run selected experiments
//! newtop-exp --quick all    # reduced sweeps (what the tests run)
//! newtop-exp --list         # list experiments
//! ```

use newtop_harness::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let registry = experiments::all();
    if list || (selected.is_empty()) {
        eprintln!("usage: newtop-exp [--quick] (all | <id>...)\n\nexperiments:");
        for (id, desc, _) in &registry {
            eprintln!("  {id:<4} {desc}");
        }
        return if list { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    let run_all = selected.iter().any(|s| s == "all");
    let mut ran = 0;
    for (id, desc, runner) in &registry {
        if run_all || selected.iter().any(|s| s == id) {
            eprintln!("running {id} — {desc} ...");
            let table = runner(quick);
            println!("{table}");
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}; try --list");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
