//! `newtop-exp` — runs the reproduction's experiment suite and prints the
//! tables recorded in EXPERIMENTS.md, and drives the chaos fleet.
//!
//! ```text
//! newtop-exp all            # run every experiment (full sweeps)
//! newtop-exp e3 e6          # run selected experiments
//! newtop-exp --quick all    # reduced sweeps (what the tests run)
//! newtop-exp --list         # list experiments
//!
//! newtop-exp chaos --seeds 0..500          # sweep a seed range
//! newtop-exp chaos --seeds 0..100000 --budget-secs 3000   # nightly sweep
//! newtop-exp chaos --replay file.chaos     # replay a committed script
//! newtop-exp chaos --pin 42 --out f.chaos  # pin a seed as a replay script
//!
//! newtop-exp load --nodes 32 --groups 4 --secs 5          # runtime load test
//! newtop-exp load --nodes 32 --host threads               # seed-host baseline
//! newtop-exp load --host tcp --peers 127.0.0.1:7101,127.0.0.1:7102
//!                                          # drive a real multi-process cluster
//!
//! newtop-exp serve --nodes 6 --peers A,B,C --ctrl X,Y,Z --me 0
//!                                          # one node process of a TCP cluster
//! newtop-exp proxy --route 127.0.0.1:7201=127.0.0.1:7002 --drop-pct 2
//!                                          # frame-level chaos between peers
//!
//! newtop-exp mc --nodes 3 --max-msgs 4 --max-crashes 1    # exhaustive model check
//! newtop-exp mc --nodes 3 --strategy iddfs --budget-secs 600
//! ```
//!
//! A failing chaos seed is delta-debugged to a minimal fault schedule and
//! written as a replay script under `--emit-dir` (default `target/chaos`);
//! the process exits nonzero.

use newtop_harness::chaos::{delivery_count, shrink, ChaosPlan, ChaosScenario};
use newtop_harness::loadgen::{run_load, HostKind, LoadConfig};
use newtop_harness::mc::{explore, McConfig, McStrategy, McViolation};
use newtop_harness::proxy::{run_proxy, ProxyConfig};
use newtop_harness::remote::{serve, ServeConfig};
use newtop_harness::supervisor::{run_supervisor, SupervisorConfig};
use newtop_harness::sweep::{run_chaos_seed, sweep_seeds, SweepConfig};
use newtop_harness::{experiments, history_hash};
use newtop_types::{OrderMode, Span, SuspicionMode};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("chaos") {
        return chaos_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("load") {
        return load_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("mc") {
        return mc_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("proxy") {
        return proxy_main(&args[1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let registry = experiments::all();
    if list || (selected.is_empty()) {
        eprintln!(
            "usage: newtop-exp [--quick] (all | <id>...)\n       newtop-exp chaos --help\n       newtop-exp load --help\n       newtop-exp mc --help\n       newtop-exp serve --help\n       newtop-exp proxy --help\n\nexperiments:"
        );
        for (id, desc, _) in &registry {
            eprintln!("  {id:<4} {desc}");
        }
        return if list {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let run_all = selected.iter().any(|s| s == "all");
    let mut ran = 0;
    for (id, desc, runner) in &registry {
        if run_all || selected.iter().any(|s| s == id) {
            eprintln!("running {id} — {desc} ...");
            let table = runner(quick);
            println!("{table}");
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}; try --list");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

const CHAOS_USAGE: &str = "usage:
  newtop-exp chaos --seeds A..B [options]   sweep seeds A (incl.) to B (excl.)
  newtop-exp chaos --replay FILE            replay a script, verify hash+checker
  newtop-exp chaos --pin SEED --out FILE    write SEED's plan as a replay script

options:
  --jobs N           sweep (and shrink-probe) worker threads; default: the
                     machine's available parallelism. Results are
                     bit-identical for every N — only wall-clock changes
  --budget-secs S    stop sweeping after S wall-clock seconds (still exits 0
                     if everything that did run was green)
  --emit-dir DIR     where failing-seed replay scripts go (default target/chaos)
  --no-shrink        skip delta-debugging failing schedules
  --dump             with --replay: print the per-process event logs
  --max-n N          generation limit: processes (default 7)
  --max-faults K     generation limit: fault-schedule entries (default 4;
                     8 under --churn)
  --churn            generate the churn family: crash/depart-heavy fault
                     schedules with the crash budget raised to n-2
  --wan              generate the WAN/geo family: seeded multi-region
                     topologies with capped uplinks, asymmetric trunks,
                     duplication/reorder knobs and congestion windows
                     (combines with --churn)";

struct ChaosArgs {
    seeds: Option<(u64, u64)>,
    replay: Option<String>,
    pin: Option<u64>,
    out: Option<String>,
    jobs: usize,
    budget_secs: Option<u64>,
    emit_dir: String,
    no_shrink: bool,
    dump: bool,
    max_n: u32,
    max_faults: Option<u32>,
    churn: bool,
    wan: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_chaos_args(args: &[String]) -> Result<ChaosArgs, String> {
    let mut out = ChaosArgs {
        seeds: None,
        replay: None,
        pin: None,
        out: None,
        jobs: default_jobs(),
        budget_secs: None,
        emit_dir: "target/chaos".to_string(),
        no_shrink: false,
        dump: false,
        max_n: 7,
        max_faults: None,
        churn: false,
        wan: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seeds" => {
                let v = val("--seeds")?;
                let (lo, hi) = match v.split_once("..") {
                    Some((lo, hi)) => (
                        lo.parse::<u64>().map_err(|_| "bad --seeds".to_string())?,
                        hi.parse::<u64>().map_err(|_| "bad --seeds".to_string())?,
                    ),
                    None => (0, v.parse::<u64>().map_err(|_| "bad --seeds".to_string())?),
                };
                if lo >= hi {
                    return Err("--seeds range is empty".to_string());
                }
                out.seeds = Some((lo, hi));
            }
            "--replay" => out.replay = Some(val("--replay")?),
            "--pin" => {
                out.pin = Some(
                    val("--pin")?
                        .parse::<u64>()
                        .map_err(|_| "bad --pin seed".to_string())?,
                );
            }
            "--out" => out.out = Some(val("--out")?),
            "--jobs" => {
                out.jobs = val("--jobs")?
                    .parse::<usize>()
                    .map_err(|_| "bad --jobs".to_string())?
                    .max(1);
            }
            "--budget-secs" => {
                out.budget_secs = Some(
                    val("--budget-secs")?
                        .parse::<u64>()
                        .map_err(|_| "bad --budget-secs".to_string())?,
                );
            }
            "--emit-dir" => out.emit_dir = val("--emit-dir")?,
            "--no-shrink" => out.no_shrink = true,
            "--dump" => out.dump = true,
            "--max-n" => {
                out.max_n = val("--max-n")?
                    .parse::<u32>()
                    .map_err(|_| "bad --max-n".to_string())?;
            }
            "--max-faults" => {
                out.max_faults = Some(
                    val("--max-faults")?
                        .parse::<u32>()
                        .map_err(|_| "bad --max-faults".to_string())?,
                );
            }
            "--churn" => out.churn = true,
            "--wan" => out.wan = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown chaos option {other}")),
        }
    }
    Ok(out)
}

fn chaos_main(args: &[String]) -> ExitCode {
    let parsed = match parse_chaos_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{CHAOS_USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(file) = &parsed.replay {
        return chaos_replay(file, parsed.dump);
    }
    if let Some(seed) = parsed.pin {
        return chaos_pin(&parsed, seed);
    }
    let Some((lo, hi)) = parsed.seeds else {
        eprintln!("{CHAOS_USAGE}");
        return ExitCode::from(2);
    };
    chaos_sweep(&parsed, lo, hi)
}

fn scenario_for(parsed: &ChaosArgs, seed: u64) -> ChaosScenario {
    let mut s = if parsed.churn {
        ChaosScenario::churn(seed)
    } else {
        ChaosScenario::new(seed)
    };
    s.wan = parsed.wan;
    s.max_n = parsed.max_n;
    if let Some(mf) = parsed.max_faults {
        s.max_faults = mf;
    }
    s
}

fn chaos_sweep(parsed: &ChaosArgs, lo: u64, hi: u64) -> ExitCode {
    // Engine panics are caught and reported as seed failures; silence the
    // default hook so shrinking panicking candidates doesn't spam stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let started = std::time::Instant::now();
    let cfg = SweepConfig {
        jobs: parsed.jobs,
        budget: parsed.budget_secs.map(Duration::from_secs),
        hash_histories: false,
    };
    // Phase 1 — the parallel sweep. Progress goes to stderr as seeds
    // complete (completion order varies with scheduling); everything on
    // stdout below comes from the deterministic aggregate, so it is
    // byte-identical for every --jobs value.
    let report = sweep_seeds(
        lo,
        hi,
        &cfg,
        |seed| run_chaos_seed(&scenario_for(parsed, seed), false),
        |_, done| {
            if done % 50 == 0 {
                eprintln!(
                    "chaos: {done} seeds swept ({:.1}s, {} jobs)",
                    started.elapsed().as_secs_f64(),
                    parsed.jobs
                );
            }
        },
    );
    // Phase 2 — deterministic aggregation: failing seeds in seed order,
    // each reported once, shrunk (probe pool shared with the sweep's
    // --jobs) and pinned as a replay script.
    for outcome in &report.failures {
        let seed = outcome.seed;
        let plan = scenario_for(parsed, seed).plan();
        let opts = plan.check_options();
        match &outcome.panic {
            Some(msg) => eprintln!("chaos: seed {seed} FAILED (ENGINE PANIC): {msg}"),
            None => {
                eprintln!(
                    "chaos: seed {seed} FAILED ({} violations):",
                    outcome.violations.len()
                );
                for v in outcome.violations.iter().take(5) {
                    eprintln!("  - {v}");
                }
            }
        }
        let final_plan = if parsed.no_shrink {
            plan
        } else {
            eprintln!("chaos: shrinking seed {seed} ...");
            let r = shrink(&plan, &opts, 400, parsed.jobs);
            eprintln!(
                "chaos: shrunk to {} faults / {} sends in {} runs",
                r.plan.faults.len(),
                r.plan.sends.len(),
                r.runs
            );
            r.plan
        };
        // Panicking plans have no replayable hash; the script still replays
        // the panic itself.
        let hash = final_plan.try_run_history().ok().map(|h| history_hash(&h));
        let script = final_plan.to_script(hash);
        if let Err(e) = std::fs::create_dir_all(&parsed.emit_dir) {
            eprintln!("chaos: cannot create {}: {e}", parsed.emit_dir);
        } else {
            let path = format!("{}/seed-{seed}.chaos", parsed.emit_dir);
            match std::fs::write(&path, &script) {
                Ok(()) => eprintln!("chaos: replay script written to {path}"),
                Err(e) => eprintln!("chaos: cannot write {path}: {e}"),
            }
        }
    }
    let failing = report.failing_seeds();
    let verdict = if failing.is_empty() { "green" } else { "RED" };
    println!(
        "chaos sweep {lo}..{hi}: {} seeds run{}, {} tagged deliveries, {} failing seed(s) — {verdict}",
        report.ran,
        if report.stopped_early { " (budget hit)" } else { "" },
        report.deliveries,
        failing.len(),
    );
    eprintln!(
        "chaos: {:.0} seeds/sec over {} jobs ({:.1}s wall)",
        report.ran as f64 / started.elapsed().as_secs_f64().max(1e-9),
        parsed.jobs,
        started.elapsed().as_secs_f64()
    );
    if !failing.is_empty() {
        println!("failing seeds: {failing:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn chaos_replay(file: &str, dump: bool) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let (plan, expect_hash) = match ChaosPlan::parse_script(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let history = match plan.try_run_history() {
        Ok(h) => h,
        Err(panic_msg) => {
            println!("chaos replay {file}: ENGINE PANIC: {panic_msg}");
            return ExitCode::FAILURE;
        }
    };
    if dump {
        for (p, events) in &history.events {
            println!("== {p} ({} events)", events.len());
            for e in events {
                println!("  {e:?}");
            }
        }
    }
    let hash = history_hash(&history);
    if let Some(expect) = expect_hash {
        if hash != expect {
            println!(
                "chaos replay {file}: HASH MISMATCH (expected {expect:016x}, got {hash:016x})"
            );
            return ExitCode::FAILURE;
        }
    }
    let violations = newtop_harness::check_all(&history, &plan.check_options());
    if violations.is_empty() {
        println!(
            "chaos replay {file}: green (hash {hash:016x}, {} tagged deliveries)",
            delivery_count(&history)
        );
        ExitCode::SUCCESS
    } else {
        println!("chaos replay {file}: {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

const LOAD_USAGE: &str = "usage:
  newtop-exp load [options]        closed-loop runtime load test

options:
  --nodes N          protocol participants (default 8)
  --groups G         groups; node i joins group (i-1) mod G (default 3)
  --shards S         worker shards for the sharded host
                     (default: available parallelism)
  --secs T           sending duration in seconds, fractions ok (default 2)
  --mode sym|asym    ordering variant for every group (default sym)
  --payload B        application payload bytes, >= 8 (default 64)
  --window W         closed-loop in-flight messages per group (default 16)
  --host sharded|threads|tcp
                     host under test: the sharded event-loop host, the
                     frozen thread-per-process baseline, or a real
                     multi-process cluster of `newtop-exp serve`
                     processes (default sharded)
  --peers A,B,...    tcp host: the serve processes' control addresses,
                     cluster order (required with --host tcp)
  --stop-peers       tcp host: ask every serve process to shut down
                     after the run
  --omega-ms MS      time-silence interval omega (default 25)
  --big-omega-ms MS  suspicion timeout Omega (default 10000;
                     1500 under --supervise)
  --accrual          run the adaptive accrual suspicion detector instead
                     of the fixed Omega timeout
  --expect-stable    fail (exit 1) if any view change occurs mid-run —
                     asserts zero false exclusions under latency spikes
  --inbox-cap N      shard-inbox admission bound; excess client
                     multicasts are shed as explicit backpressure
  --flush-window US  egress flush window in microseconds for the sharded
                     host; bounds coalescing delay only under saturation
                     (an idle shard flushes immediately). 0 disables wire
                     batching entirely (default 200)
  --batch-max N      max envelopes coalesced into one frame (default 128)
  --wan-profile KBPS sharded host: cap the host's whole egress at KBPS
                     kilobytes per second (a WAN uplink). Shards past
                     the budget stall, so latency rises like on a
                     saturated real link; pair with --accrual
                     --expect-stable to assert congestion never causes
                     a false exclusion

churn / crash-recovery:
  --churn SEED       sharded host: seeded mid-run kills of non-driver
                     nodes (exclusions are then expected, not warnings).
                     With --host tcp this routes to --supervise
  --supervise        spawn a real TCP cluster of serve processes and run
                     seeded kill-9 / restart / rejoin cycles against it
                     (ignores --host and --peers)
  --cycles N         supervise: kill/restart cycles (default 3)
  --procs P          supervise: serve processes (default 3; peer 0 is
                     never killed)
  --seed S           supervise: victim-schedule seed (default 1)
  --port-base P      supervise: first listen port (default 7400)";

struct LoadArgs {
    cfg: LoadConfig,
    supervise: bool,
    cycles: u32,
    procs: usize,
    seed: u64,
    port_base: u16,
    big_omega_set: bool,
    expect_stable: bool,
}

fn parse_load_args(args: &[String]) -> Result<LoadArgs, String> {
    let mut cfg = LoadConfig::default();
    let mut supervise = false;
    let mut cycles = 3u32;
    let mut procs = 3usize;
    let mut seed = 1u64;
    let mut port_base = 7400u16;
    let mut big_omega_set = false;
    let mut expect_stable = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--nodes" => {
                cfg.nodes = val("--nodes")?
                    .parse::<u32>()
                    .map_err(|_| "bad --nodes".to_string())?;
            }
            "--groups" => {
                cfg.groups = val("--groups")?
                    .parse::<u32>()
                    .map_err(|_| "bad --groups".to_string())?;
            }
            "--shards" => {
                cfg.shards = val("--shards")?
                    .parse::<usize>()
                    .map_err(|_| "bad --shards".to_string())?;
            }
            "--secs" => {
                cfg.secs = val("--secs")?
                    .parse::<f64>()
                    .map_err(|_| "bad --secs".to_string())?;
            }
            "--mode" => {
                cfg.mode = match val("--mode")?.as_str() {
                    "sym" => OrderMode::Symmetric,
                    "asym" => OrderMode::Asymmetric,
                    other => return Err(format!("bad --mode {other} (sym|asym)")),
                };
            }
            "--payload" => {
                cfg.payload = val("--payload")?
                    .parse::<usize>()
                    .map_err(|_| "bad --payload".to_string())?;
            }
            "--window" => {
                cfg.window = val("--window")?
                    .parse::<u32>()
                    .map_err(|_| "bad --window".to_string())?;
            }
            "--host" => cfg.host = val("--host")?.parse::<HostKind>()?,
            "--peers" => cfg.peers = parse_addr_list("--peers", &val("--peers")?)?,
            "--stop-peers" => cfg.stop_peers = true,
            "--omega-ms" => {
                cfg.omega = Span::from_millis(
                    val("--omega-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --omega-ms".to_string())?,
                );
            }
            "--big-omega-ms" => {
                cfg.big_omega = Span::from_millis(
                    val("--big-omega-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --big-omega-ms".to_string())?,
                );
                big_omega_set = true;
            }
            "--accrual" => cfg.suspicion = SuspicionMode::accrual(),
            "--expect-stable" => expect_stable = true,
            "--inbox-cap" => {
                cfg.inbox_cap = Some(
                    val("--inbox-cap")?
                        .parse::<usize>()
                        .map_err(|_| "bad --inbox-cap".to_string())?,
                );
            }
            "--churn" => {
                cfg.churn = Some(
                    val("--churn")?
                        .parse::<u64>()
                        .map_err(|_| "bad --churn seed".to_string())?,
                );
            }
            "--supervise" => supervise = true,
            "--cycles" => {
                cycles = val("--cycles")?
                    .parse::<u32>()
                    .map_err(|_| "bad --cycles".to_string())?;
            }
            "--procs" => {
                procs = val("--procs")?
                    .parse::<usize>()
                    .map_err(|_| "bad --procs".to_string())?;
            }
            "--seed" => {
                seed = val("--seed")?
                    .parse::<u64>()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--port-base" => {
                port_base = val("--port-base")?
                    .parse::<u16>()
                    .map_err(|_| "bad --port-base".to_string())?;
            }
            "--flush-window" => {
                cfg.flush_window_us = Some(
                    val("--flush-window")?
                        .parse::<u64>()
                        .map_err(|_| "bad --flush-window".to_string())?,
                );
            }
            "--batch-max" => {
                cfg.batch_max = Some(
                    val("--batch-max")?
                        .parse::<u32>()
                        .map_err(|_| "bad --batch-max".to_string())?,
                );
            }
            "--wan-profile" => {
                cfg.wan_profile_kbps = Some(
                    val("--wan-profile")?
                        .parse::<u64>()
                        .map_err(|_| "bad --wan-profile".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown load option {other}")),
        }
    }
    Ok(LoadArgs {
        cfg,
        supervise,
        cycles,
        procs,
        seed,
        port_base,
        big_omega_set,
        expect_stable,
    })
}

/// `load --supervise` (and `load --churn --host tcp`): the supervised
/// crash-recovery scenario against a real spawned TCP cluster.
fn supervise_main(args: &LoadArgs) -> ExitCode {
    let mut cfg = SupervisorConfig::new(args.cfg.churn.unwrap_or(args.seed));
    cfg.nodes = args.cfg.nodes;
    cfg.groups = args.cfg.groups;
    cfg.procs = args.procs;
    cfg.cycles = args.cycles;
    cfg.payload = args.cfg.payload;
    cfg.mode = args.cfg.mode;
    cfg.omega = args.cfg.omega;
    if args.big_omega_set {
        cfg.big_omega = args.cfg.big_omega;
    }
    cfg.accrual = args.cfg.suspicion != SuspicionMode::FixedOmega;
    cfg.port_base = args.port_base;
    eprintln!(
        "supervise: {} nodes / {} groups over {} procs, {} kill/restart cycle(s), seed {}{}",
        cfg.nodes,
        cfg.groups,
        cfg.procs,
        cfg.cycles,
        cfg.seed,
        if cfg.accrual { ", accrual" } else { "" },
    );
    match run_supervisor(&cfg) {
        Ok(r) => {
            println!(
                "supervise [tcp] {} nodes / {} groups / {} procs: {} cycle(s), victims {:?}, \
                 {} rejoin(s), {} deliveries, {} view change(s), {} order violation(s) — green",
                cfg.nodes,
                cfg.groups,
                cfg.procs,
                r.cycles,
                r.victims,
                r.rejoins,
                r.deliveries,
                r.view_changes,
                r.order_violations,
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("supervise: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_main(args: &[String]) -> ExitCode {
    let parsed = match parse_load_args(args) {
        Ok(c) => c,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{LOAD_USAGE}");
            return ExitCode::from(2);
        }
    };
    if parsed.supervise || (parsed.cfg.churn.is_some() && parsed.cfg.host == HostKind::Tcp) {
        return supervise_main(&parsed);
    }
    let cfg = parsed.cfg;
    let host_name = cfg.host.as_str();
    let mode_name = match cfg.mode {
        OrderMode::Symmetric => "sym",
        OrderMode::Asymmetric => "asym",
    };
    eprintln!(
        "load: host={host_name} nodes={} groups={} mode={mode_name} payload={}B window={}/group secs={}",
        cfg.nodes, cfg.groups, cfg.payload, cfg.window, cfg.secs
    );
    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    println!(
        "load [{host_name}] {} nodes / {} groups / {} shard(s), {mode_name}: \
         {} sent, {} delivered in {:.2}s => {:.0} msgs/sec delivered",
        cfg.nodes,
        cfg.groups,
        report.shards_used,
        report.sent,
        report.delivered,
        report.elapsed.as_secs_f64(),
        report.delivered_per_sec(),
    );
    println!(
        "load latency (multicast -> member delivery): p50 {:.2} ms, p99 {:.2} ms",
        report.p50_us as f64 / 1000.0,
        report.p99_us as f64 / 1000.0,
    );
    if let Some(wire) = report.wire {
        println!(
            "load wire: {} frames / {} envelopes, {:.2} MB exact ({:.2} MB/s)",
            wire.frames,
            wire.envelopes,
            wire.bytes as f64 / 1e6,
            wire.bytes as f64 / 1e6 / report.elapsed.as_secs_f64().max(1e-9),
        );
        println!(
            "load wire: {:.0} frames/sec vs {:.0} envelopes/sec \
             (mean batch occupancy {:.2})",
            report.frames_per_sec().unwrap_or(0.0),
            report.envelopes_per_sec().unwrap_or(0.0),
            wire.mean_occupancy(),
        );
        let hist: Vec<String> = newtop_runtime::OCCUPANCY_LABELS
            .iter()
            .zip(wire.occupancy.iter())
            .map(|(label, n)| format!("{label}:{n}"))
            .collect();
        println!("load wire: occupancy histogram [{}]", hist.join(" "));
        println!(
            "load wire: {} null-only frames, {} omega nulls suppressed at egress",
            wire.null_frames, wire.suppressed_nulls,
        );
    }
    if cfg.churn.is_some() {
        println!(
            "load churn: {} node(s) killed, {} view change(s) (expected exclusions), {} shed",
            report.killed, report.view_changes, report.shed
        );
    } else if report.view_changes > 0 {
        if parsed.expect_stable {
            eprintln!(
                "load: FAILED: {} view change(s) under --expect-stable — false exclusion(s)",
                report.view_changes
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "load: WARNING: {} view change(s) mid-run — the host starved a node past Omega",
            report.view_changes
        );
    }
    if report.delivered == 0 {
        eprintln!("load: no deliveries — treat as failure");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

const MC_USAGE: &str = "usage:
  newtop-exp mc [options]          exhaustive small-scope model check

Explores every interleaving of one group over N processes within the
budgets, deduping on the canonical state digest and running the safety
checker plus the engine invariant audit at every state. A violation is
ddmin-shrunk and written as a chaos replay script (newtop-exp chaos
--replay re-executes it).

options:
  --nodes N          processes, all in one group (default 3)
  --max-msgs K       application-multicast budget (default 2)
  --max-crashes K    crash budget (default 1)
  --max-wakes K      timer wake-up budget (default 2)
  --depth D          schedule-length bound; 0 = auto (default 0)
  --strategy bfs|iddfs
                     exploration order (default bfs); both find a
                     shallowest counterexample first
  --budget-secs S    wall-clock budget; exceeding it exits 3 (inconclusive:
                     the space was not exhausted; a violation exits 1)
  --mode sym|asym    ordering variant of the group (default sym)
  --omega-us US      time-silence interval omega (default 5000)
  --big-omega-us US  suspicion timeout Omega, must exceed omega
                     (default 10000); short timers make suspicion
                     reachable within a small --max-wakes budget
  --seed S           plan label (the fixed-latency net draws nothing)
  --emit-dir DIR     where counterexample scripts go (default target/mc)";

struct McArgs {
    cfg: McConfig,
    emit_dir: String,
}

fn parse_mc_args(args: &[String]) -> Result<McArgs, String> {
    let mut out = McArgs {
        cfg: McConfig::new(3),
        emit_dir: "target/mc".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_u32 = |name: &str, v: String| v.parse::<u32>().map_err(|_| format!("bad {name}"));
        match a.as_str() {
            "--nodes" => {
                let n = parse_u32("--nodes", val("--nodes")?)?;
                if !(2..=4).contains(&n) {
                    return Err("--nodes must be 2..=4 (small-scope checker)".to_string());
                }
                out.cfg.nodes = n;
            }
            "--max-msgs" => out.cfg.max_msgs = parse_u32("--max-msgs", val("--max-msgs")?)?,
            "--max-crashes" => {
                out.cfg.max_crashes = parse_u32("--max-crashes", val("--max-crashes")?)?;
            }
            "--max-wakes" => out.cfg.max_wakes = parse_u32("--max-wakes", val("--max-wakes")?)?,
            "--depth" => {
                out.cfg.depth = val("--depth")?
                    .parse::<usize>()
                    .map_err(|_| "bad --depth".to_string())?;
            }
            "--strategy" => {
                out.cfg.strategy = match val("--strategy")?.as_str() {
                    "bfs" => McStrategy::Bfs,
                    "dfs" | "iddfs" => McStrategy::Iddfs,
                    other => return Err(format!("bad --strategy {other} (bfs|iddfs)")),
                };
            }
            "--budget-secs" => {
                out.cfg.budget = Some(Duration::from_secs(
                    val("--budget-secs")?
                        .parse::<u64>()
                        .map_err(|_| "bad --budget-secs".to_string())?,
                ));
            }
            "--mode" => {
                out.cfg.mode = match val("--mode")?.as_str() {
                    "sym" => OrderMode::Symmetric,
                    "asym" => OrderMode::Asymmetric,
                    other => return Err(format!("bad --mode {other} (sym|asym)")),
                };
            }
            "--omega-us" => {
                out.cfg.omega_us = val("--omega-us")?
                    .parse::<u64>()
                    .map_err(|_| "bad --omega-us".to_string())?;
            }
            "--big-omega-us" => {
                out.cfg.big_omega_us = val("--big-omega-us")?
                    .parse::<u64>()
                    .map_err(|_| "bad --big-omega-us".to_string())?;
            }
            "--seed" => {
                out.cfg.seed = val("--seed")?
                    .parse::<u64>()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--emit-dir" => out.emit_dir = val("--emit-dir")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown mc option {other}")),
        }
    }
    if out.cfg.big_omega_us <= out.cfg.omega_us {
        return Err("--big-omega-us must exceed --omega-us".to_string());
    }
    Ok(out)
}

fn mc_main(args: &[String]) -> ExitCode {
    let parsed = match parse_mc_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{MC_USAGE}");
            return ExitCode::from(2);
        }
    };
    let cfg = parsed.cfg;
    let strategy = match cfg.strategy {
        McStrategy::Bfs => "bfs",
        McStrategy::Iddfs => "iddfs",
    };
    eprintln!(
        "mc: nodes={} max-msgs={} max-crashes={} max-wakes={} depth={} strategy={strategy}",
        cfg.nodes,
        cfg.max_msgs,
        cfg.max_crashes,
        cfg.max_wakes,
        cfg.effective_depth(),
    );
    // Shrink probes replay schedules whose invariant audits may
    // debug-assert; the panics are caught and counted, not printed.
    std::panic::set_hook(Box::new(|_| {}));
    let report = explore(&cfg);
    println!(
        "mc {} nodes / {} msgs / {} crashes / {} wakes / depth {}: \
         {} states explored, {} deduped, frontier peak {} ({:.1}s)",
        cfg.nodes,
        cfg.max_msgs,
        cfg.max_crashes,
        cfg.max_wakes,
        cfg.effective_depth(),
        report.explored,
        report.deduped,
        report.frontier_peak,
        report.elapsed.as_secs_f64(),
    );
    match &report.violation {
        None => {
            if report.complete {
                println!("mc: space exhausted, no violation — green");
                ExitCode::SUCCESS
            } else {
                // Exit 3 (not 1) so budget-capped deep runs can tell
                // "inconclusive" from "violation found".
                println!("mc: BUDGET EXHAUSTED before the space was — inconclusive");
                ExitCode::from(3)
            }
        }
        Some(v) => {
            match v {
                McViolation::Property(vs) => {
                    println!("mc: VIOLATION ({} checker finding(s)):", vs.len());
                    for v in vs.iter().take(5) {
                        println!("  - {v}");
                    }
                }
                McViolation::Invariant(e) => println!("mc: ENGINE INVARIANT VIOLATED: {e}"),
            }
            if let Some(cex) = &report.counterexample {
                println!(
                    "mc: counterexample schedule has {} step(s) (shrunk in {} runs)",
                    cex.mc_steps.len(),
                    report.shrink_runs
                );
                let hash = cex.try_run_history().ok().map(|h| history_hash(&h));
                let script = cex.to_script(hash);
                if let Err(e) = std::fs::create_dir_all(&parsed.emit_dir) {
                    eprintln!("mc: cannot create {}: {e}", parsed.emit_dir);
                } else {
                    let path = format!("{}/mc-counterexample.chaos", parsed.emit_dir);
                    match std::fs::write(&path, &script) {
                        Ok(()) => println!("mc: replay script written to {path}"),
                        Err(e) => eprintln!("mc: cannot write {path}: {e}"),
                    }
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// Parses a comma-separated socket-address list.
fn parse_addr_list(name: &str, v: &str) -> Result<Vec<SocketAddr>, String> {
    v.split(',')
        .map(|a| {
            a.trim()
                .parse::<SocketAddr>()
                .map_err(|_| format!("bad address '{a}' in {name}"))
        })
        .collect()
}

const SERVE_USAGE: &str = "usage:
  newtop-exp serve --nodes N --peers A,B,... --ctrl X,Y,... --me I [options]

Runs one peer process of a real TCP cluster: hosts its contiguous block
of the N nodes on the sharded runtime, speaks the batched frame protocol
to the other peers over --peers, and serves the load generator's control
connections on --ctrl until a client sends shutdown (load --stop-peers).

options:
  --nodes N          protocol participants cluster-wide (required)
  --groups G         groups; node i joins group (i-1) mod G (default 1)
  --peers A,B,...    every peer's data-plane address, cluster order
  --ctrl X,Y,...     every peer's control-plane address, same order
  --me I             this process's index into both lists (0-based)
  --shards S         worker shards for the local sharded host
                     (default: available parallelism)
  --mode sym|asym    ordering variant for every group (default sym)
  --omega-ms MS      time-silence interval omega (default 25)
  --big-omega-ms MS  suspicion timeout Omega (default 10000)
  --accrual          adaptive accrual suspicion instead of fixed Omega
  --inbox-cap N      shard-inbox admission bound (client multicasts
                     beyond it are shed as explicit backpressure)
  --rejoin           crash-recovery restart: skip the group bootstrap
                     (the survivors excluded this peer's old nodes; a
                     fresh group arrives via a client's form op) and
                     retry the data-plane bind over TIME_WAIT residue";

fn parse_serve_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::new(0, 1, Vec::new(), Vec::new(), 0);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--nodes" => {
                cfg.nodes = val("--nodes")?
                    .parse::<u32>()
                    .map_err(|_| "bad --nodes".to_string())?;
            }
            "--groups" => {
                cfg.groups = val("--groups")?
                    .parse::<u32>()
                    .map_err(|_| "bad --groups".to_string())?;
            }
            "--peers" => cfg.peers = parse_addr_list("--peers", &val("--peers")?)?,
            "--ctrl" => cfg.ctrl = parse_addr_list("--ctrl", &val("--ctrl")?)?,
            "--me" => {
                cfg.me = val("--me")?
                    .parse::<usize>()
                    .map_err(|_| "bad --me".to_string())?;
            }
            "--shards" => {
                let s = val("--shards")?
                    .parse::<usize>()
                    .map_err(|_| "bad --shards".to_string())?;
                if s > 0 {
                    cfg.cluster = cfg.cluster.shards(s);
                }
            }
            "--mode" => {
                cfg.mode = match val("--mode")?.as_str() {
                    "sym" => OrderMode::Symmetric,
                    "asym" => OrderMode::Asymmetric,
                    other => return Err(format!("bad --mode {other} (sym|asym)")),
                };
            }
            "--omega-ms" => {
                cfg.omega = Span::from_millis(
                    val("--omega-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --omega-ms".to_string())?,
                );
            }
            "--big-omega-ms" => {
                cfg.big_omega = Span::from_millis(
                    val("--big-omega-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --big-omega-ms".to_string())?,
                );
            }
            "--accrual" => cfg.suspicion = SuspicionMode::accrual(),
            "--inbox-cap" => {
                let cap = val("--inbox-cap")?
                    .parse::<usize>()
                    .map_err(|_| "bad --inbox-cap".to_string())?;
                cfg.cluster = cfg.cluster.inbox_cap(cap);
            }
            "--rejoin" => cfg.bootstrap = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    if cfg.nodes == 0 {
        return Err("--nodes is required".to_string());
    }
    Ok(cfg)
}

fn serve_main(args: &[String]) -> ExitCode {
    let cfg = match parse_serve_args(args) {
        Ok(c) => c,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "serve: peer {}/{} data={} ctrl={} hosting its block of the {} node(s)",
        cfg.me,
        cfg.peers.len(),
        cfg.peers[cfg.me.min(cfg.peers.len().saturating_sub(1))],
        cfg.ctrl[cfg.me.min(cfg.ctrl.len().saturating_sub(1))],
        cfg.nodes,
    );
    match serve(&cfg) {
        Ok(()) => {
            eprintln!("serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const PROXY_USAGE: &str = "usage:
  newtop-exp proxy --route LISTEN=UPSTREAM [--route ...] [options]

Frame-level chaos proxy for the TCP data plane: point a peer's --peers
entry at LISTEN and the proxy tunnels every connection to UPSTREAM,
dropping / delaying / reordering whole addressed records in the data
direction and pumping acks back verbatim. All interference resolves
through the runtime's sever-and-resume path, so the cluster must stay
correct under any schedule.

options:
  --route L=U        tunnel: accept on L, forward to U (repeatable)
  --seed S           interference schedule seed (default 0)
  --drop-pct P       percent of data records dropped (default 0)
  --delay-ms MS      max random per-record hold, milliseconds (default 0)
  --reorder-pct P    percent of records held past their successor (default 0)
  --dup-pct P        percent of records emitted twice back-to-back; the
                     receiver must dedup by sequence (default 0)
  --partition-at-ms T    open a partition window T ms after start
  --partition-for-ms D   window length, milliseconds (default 2000)
  --rate-kbps R      token-bucket bandwidth shaping: cap each tunnel's
                     data direction at R kilobytes per second; records
                     past the budget stall like on a saturated WAN
                     uplink (default: unshaped)
  --secs T           run this long then exit; 0 = until killed (default 0)";

struct ProxyArgs {
    cfg: ProxyConfig,
    secs: f64,
}

fn parse_proxy_args(args: &[String]) -> Result<ProxyArgs, String> {
    let mut out = ProxyArgs {
        cfg: ProxyConfig::new(Vec::new()),
        secs: 0.0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--route" => {
                let v = val("--route")?;
                let (listen, upstream) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --route '{v}' (want LISTEN=UPSTREAM)"))?;
                out.cfg.routes.push((
                    listen
                        .trim()
                        .parse::<SocketAddr>()
                        .map_err(|_| format!("bad listen address '{listen}'"))?,
                    upstream
                        .trim()
                        .parse::<SocketAddr>()
                        .map_err(|_| format!("bad upstream address '{upstream}'"))?,
                ));
            }
            "--seed" => {
                out.cfg.seed = val("--seed")?
                    .parse::<u64>()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--drop-pct" => {
                out.cfg.drop_pct = val("--drop-pct")?
                    .parse::<u8>()
                    .map_err(|_| "bad --drop-pct".to_string())?
                    .min(100);
            }
            "--delay-ms" => {
                out.cfg.delay_ms = val("--delay-ms")?
                    .parse::<u64>()
                    .map_err(|_| "bad --delay-ms".to_string())?;
            }
            "--reorder-pct" => {
                out.cfg.reorder_pct = val("--reorder-pct")?
                    .parse::<u8>()
                    .map_err(|_| "bad --reorder-pct".to_string())?
                    .min(100);
            }
            "--dup-pct" => {
                out.cfg.dup_pct = val("--dup-pct")?
                    .parse::<u8>()
                    .map_err(|_| "bad --dup-pct".to_string())?
                    .min(100);
            }
            "--partition-at-ms" => {
                out.cfg.partition_at = Some(Duration::from_millis(
                    val("--partition-at-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --partition-at-ms".to_string())?,
                ));
            }
            "--partition-for-ms" => {
                out.cfg.partition_for = Duration::from_millis(
                    val("--partition-for-ms")?
                        .parse::<u64>()
                        .map_err(|_| "bad --partition-for-ms".to_string())?,
                );
            }
            "--rate-kbps" => {
                let kbps = val("--rate-kbps")?
                    .parse::<u64>()
                    .map_err(|_| "bad --rate-kbps".to_string())?;
                if kbps == 0 {
                    return Err("--rate-kbps must be nonzero (omit it for unshaped)".to_string());
                }
                out.cfg.rate_kbps = Some(kbps);
            }
            "--secs" => {
                out.secs = val("--secs")?
                    .parse::<f64>()
                    .map_err(|_| "bad --secs".to_string())?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown proxy option {other}")),
        }
    }
    if out.cfg.routes.is_empty() {
        return Err("at least one --route is required".to_string());
    }
    Ok(out)
}

fn proxy_main(args: &[String]) -> ExitCode {
    let parsed = match parse_proxy_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{PROXY_USAGE}");
            return ExitCode::from(2);
        }
    };
    let handle = match run_proxy(&parsed.cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: proxy bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (listen, upstream) in &parsed.cfg.routes {
        eprintln!("proxy: {listen} -> {upstream}");
    }
    eprintln!(
        "proxy: seed={} drop={}% delay<= {}ms reorder={}% dup={}%{}",
        parsed.cfg.seed,
        parsed.cfg.drop_pct,
        parsed.cfg.delay_ms,
        parsed.cfg.reorder_pct,
        parsed.cfg.dup_pct,
        match parsed.cfg.partition_at {
            Some(at) => format!(
                " partition @{}ms for {}ms",
                at.as_millis(),
                parsed.cfg.partition_for.as_millis()
            ),
            None => String::new(),
        },
    );
    if parsed.secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(parsed.secs));
        let forwarded = handle.forwarded.load(std::sync::atomic::Ordering::Relaxed);
        let dropped = handle.dropped.load(std::sync::atomic::Ordering::Relaxed);
        let duplicated = handle.duplicated.load(std::sync::atomic::Ordering::Relaxed);
        handle.stop();
        eprintln!(
            "proxy: done ({forwarded} records forwarded, {dropped} dropped, {duplicated} duplicated)"
        );
    } else {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    ExitCode::SUCCESS
}

fn chaos_pin(parsed: &ChaosArgs, seed: u64) -> ExitCode {
    let plan = scenario_for(parsed, seed).plan();
    let history = match plan.try_run_history() {
        Ok(h) => h,
        Err(panic_msg) => {
            eprintln!("chaos: seed {seed} ENGINE PANIC: {panic_msg} (script emitted without hash)");
            let script = plan.to_script(None);
            match &parsed.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &script) {
                        eprintln!("chaos: cannot write {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                None => print!("{script}"),
            }
            return ExitCode::SUCCESS;
        }
    };
    let hash = history_hash(&history);
    let violations = newtop_harness::check_all(&history, &plan.check_options());
    let script = plan.to_script(Some(hash));
    match &parsed.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &script) {
                eprintln!("chaos: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!(
                "chaos: pinned seed {seed} to {path} (hash {hash:016x}, {} deliveries, {} violations)",
                delivery_count(&history),
                violations.len()
            );
        }
        None => print!("{script}"),
    }
    ExitCode::SUCCESS
}
