//! The property-test fleet: randomized workloads, overlapping-group
//! topologies and fault schedules, each full run validated against the
//! paper's properties (MD1, MD4/MD4', MD5/MD5', VC1, VC3, quiescent
//! liveness) by the history checker.
//!
//! Failures reproduce exactly from the printed seed — the simulator is
//! fully deterministic.

use newtop_harness::checker::{check_all, CheckOptions};
use newtop_harness::workload::RandomScenario;
use newtop_harness::{MessageId, SimCluster};
use newtop_sim::{LatencyModel, NetConfig};
use newtop_types::{GroupConfig, GroupId, Instant, OrderMode, ProcessId, Span};
use proptest::prelude::*;

fn opts_no_liveness() -> CheckOptions {
    CheckOptions {
        liveness: false,
        ..CheckOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-process simulation
        .. ProptestConfig::default()
    })]

    /// Fault-free runs over random overlapping topologies satisfy every
    /// property including liveness.
    #[test]
    fn random_fault_free_runs_hold_all_properties(
        seed in 0u64..10_000,
        n in 3u32..7,
        groups in 1u32..4,
        sends in 5u32..30,
        mixed in any::<bool>(),
    ) {
        let spec = RandomScenario {
            seed,
            n,
            groups,
            sends,
            crash: false,
            mixed_modes: mixed,
        };
        let h = spec.run().history();
        let v = check_all(&h, &CheckOptions::default());
        prop_assert!(v.is_empty(), "seed {}: {:?}", seed, v);
    }

    /// Runs with a random crash still satisfy every property (liveness is
    /// judged against final views, which exclude the crashed process).
    #[test]
    fn random_crash_runs_hold_all_properties(
        seed in 0u64..10_000,
        n in 3u32..7,
        groups in 1u32..4,
        sends in 5u32..25,
    ) {
        let spec = RandomScenario {
            seed,
            n,
            groups,
            sends,
            crash: true,
            mixed_modes: false,
        };
        let h = spec.run().history();
        let v = check_all(&h, &CheckOptions::default());
        prop_assert!(v.is_empty(), "seed {}: {:?}", seed, v);
    }

    /// A permanent random half/half partition never breaks safety (order,
    /// causality, views); liveness is per-side and not asserted globally.
    #[test]
    fn random_partition_runs_hold_safety(
        seed in 0u64..10_000,
        n in 4u32..8,
        cut_ms in 20u64..120,
    ) {
        let net = NetConfig::new(seed).with_latency(LatencyModel::Uniform {
            lo: Span::from_micros(100),
            hi: Span::from_millis(3),
        });
        let mut cluster = SimCluster::new(n, net);
        let cfg = GroupConfig::new(OrderMode::Symmetric)
            .with_omega(Span::from_millis(5))
            .with_big_omega(Span::from_millis(60));
        cluster.bootstrap_group(GroupId(1), &(1..=n).collect::<Vec<_>>(), cfg);
        for k in 0..15u64 {
            cluster.schedule_send(
                Instant::from_micros(2_000 + k * 4_000),
                (k % u64::from(n)) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        let half: Vec<u32> = (1..=n / 2).collect();
        let rest: Vec<u32> = (n / 2 + 1..=n).collect();
        cluster.schedule_partition(Instant::from_micros(cut_ms * 1_000), &[&half, &rest]);
        cluster.run_for(Span::from_millis(1_500));
        let h = cluster.history();
        let v = check_all(&h, &opts_no_liveness());
        prop_assert!(v.is_empty(), "seed {seed} cut {cut_ms}ms: {v:?}");
        // Final views are disjoint across the cut.
        let va = cluster.proc(1).view(GroupId(1)).expect("member").clone();
        let vb = cluster.proc(n).view(GroupId(1)).expect("member").clone();
        prop_assert!(
            va.members().intersection(vb.members()).next().is_none(),
            "seed {seed}: views still intersect: {va} vs {vb}"
        );
    }

    /// Departures at random instants preserve all properties.
    #[test]
    fn random_departures_hold_all_properties(
        seed in 0u64..10_000,
        n in 3u32..7,
        depart_ms in 5u64..60,
    ) {
        let net = NetConfig::new(seed).with_latency(LatencyModel::Uniform {
            lo: Span::from_micros(100),
            hi: Span::from_millis(2),
        });
        let mut cluster = SimCluster::new(n, net);
        let cfg = GroupConfig::new(OrderMode::Symmetric)
            .with_omega(Span::from_millis(5))
            .with_big_omega(Span::from_millis(60));
        cluster.bootstrap_group(GroupId(1), &(1..=n).collect::<Vec<_>>(), cfg);
        for k in 0..12u64 {
            cluster.schedule_send(
                Instant::from_micros(1_000 + k * 5_000),
                (k % u64::from(n)) as u32 + 1,
                GroupId(1),
                MessageId(k),
            );
        }
        cluster.schedule_depart(Instant::from_micros(depart_ms * 1_000), n, GroupId(1));
        cluster.run_for(Span::from_millis(1_200));
        let h = cluster.history();
        let v = check_all(&h, &CheckOptions::default());
        prop_assert!(v.is_empty(), "seed {seed} depart {depart_ms}ms: {v:?}");
    }

    /// Asymmetric groups with a random sequencer crash: fail-over preserves
    /// order and liveness among survivors.
    #[test]
    fn sequencer_crash_failover_holds_properties(
        seed in 0u64..10_000,
        n in 3u32..6,
        crash_ms in 10u64..80,
    ) {
        let net = NetConfig::new(seed).with_latency(LatencyModel::Uniform {
            lo: Span::from_micros(200),
            hi: Span::from_millis(2),
        });
        let mut cluster = SimCluster::new(n, net);
        let cfg = GroupConfig::new(OrderMode::Asymmetric)
            .with_omega(Span::from_millis(5))
            .with_big_omega(Span::from_millis(60));
        cluster.bootstrap_group(GroupId(1), &(1..=n).collect::<Vec<_>>(), cfg);
        for k in 0..12u64 {
            // Senders exclude P1 (the initial sequencer, which crashes), so
            // every tagged message has a surviving originator.
            cluster.schedule_send(
                Instant::from_micros(1_000 + k * 8_000),
                (k % u64::from(n - 1)) as u32 + 2,
                GroupId(1),
                MessageId(k),
            );
        }
        cluster.schedule_crash(Instant::from_micros(crash_ms * 1_000), 1);
        cluster.run_for(Span::from_millis(1_500));
        let h = cluster.history();
        let v = check_all(&h, &CheckOptions::default());
        prop_assert!(v.is_empty(), "seed {seed} crash {crash_ms}ms: {v:?}");
        // Survivors agree on a view without P1 and with a new sequencer.
        let view = cluster.proc(2).view(GroupId(1)).expect("member").clone();
        prop_assert!(!view.contains(ProcessId(1)));
        prop_assert_eq!(view.sequencer(), Some(ProcessId(2)));
    }
}
