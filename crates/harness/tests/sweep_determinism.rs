//! Parallel-sweep determinism: the chaos fleet's aggregate must be
//! bit-identical for every `--jobs` value — same failing-seed set, same
//! per-seed history hashes, same summary counters. Work stealing may hand
//! any seed to any worker in any order; none of that may leak into the
//! result.

use newtop_harness::chaos::ChaosScenario;
use newtop_harness::sweep::{run_chaos_seed, sweep_seeds, SeedOutcome, SweepConfig};
use std::sync::Mutex;

/// Sweeps `lo..hi` of the real chaos fleet with per-seed hashing on,
/// collecting every outcome through the progress hook.
fn chaos_sweep_with_hashes(lo: u64, hi: u64, jobs: usize) -> (u64, u64, Vec<u64>, Vec<(u64, u64)>) {
    let cfg = SweepConfig {
        jobs,
        budget: None,
        hash_histories: true,
    };
    let outcomes: Mutex<Vec<(u64, Option<u64>)>> = Mutex::new(Vec::new());
    let report = sweep_seeds(
        lo,
        hi,
        &cfg,
        |seed| run_chaos_seed(&ChaosScenario::new(seed), true),
        |o, _| outcomes.lock().unwrap().push((o.seed, o.hash)),
    );
    let mut hashes: Vec<(u64, u64)> = outcomes
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|(s, h)| (s, h.expect("green chaos seeds hash their histories")))
        .collect();
    hashes.sort_unstable();
    (
        report.ran,
        report.deliveries,
        report.failing_seeds(),
        hashes,
    )
}

#[test]
fn chaos_sweep_is_bit_identical_across_job_counts() {
    let (ran1, del1, fail1, hashes1) = chaos_sweep_with_hashes(0, 48, 1);
    assert_eq!(ran1, 48);
    assert!(del1 > 0, "sweep must observe deliveries");
    assert_eq!(fail1, Vec::<u64>::new(), "seed band 0..48 is green");
    for jobs in [2, 8] {
        let (ran, del, fail, hashes) = chaos_sweep_with_hashes(0, 48, jobs);
        assert_eq!(ran, ran1, "jobs={jobs}: seeds-run count diverged");
        assert_eq!(del, del1, "jobs={jobs}: delivery count diverged");
        assert_eq!(fail, fail1, "jobs={jobs}: failing-seed set diverged");
        assert_eq!(
            hashes, hashes1,
            "jobs={jobs}: per-seed history hashes diverged"
        );
    }
}

#[test]
fn injected_failures_aggregate_identically_across_job_counts() {
    // A synthetic runner with a known failure pattern exercises the
    // failing-seed aggregation path (the real band above is green) under
    // heavy contention: 8 workers over 300 fast seeds.
    let runner = |seed: u64| SeedOutcome {
        seed,
        hash: Some(seed ^ 0xABCD),
        panic: (seed % 17 == 3).then(|| format!("injected {seed}")),
        violations: Vec::new(),
        deliveries: seed % 5,
    };
    let run = |jobs: usize| {
        let cfg = SweepConfig {
            jobs,
            ..SweepConfig::default()
        };
        let r = sweep_seeds(0, 300, &cfg, runner, |_, _| {});
        (r.ran, r.deliveries, r.failing_seeds())
    };
    let base = run(1);
    assert_eq!(base.2, (0..300).filter(|s| s % 17 == 3).collect::<Vec<_>>());
    for jobs in [2, 4, 8] {
        assert_eq!(run(jobs), base, "jobs={jobs}");
    }
}
