//! Delay-mode partition heal: messages crossing the cut are parked by the
//! transport (modelling retransmission) and released, in order, at heal —
//! nobody need be excluded, every member converges on the same totally
//! ordered history, and the checker's full property set (including
//! quiescent liveness) holds.

use newtop_harness::checker::{check_all, CheckOptions};
use newtop_harness::{MessageId, SimCluster};
use newtop_sim::{LatencyModel, NetConfig, PartitionMode};
use newtop_types::{GroupConfig, GroupId, Instant, OrderMode, ProcessId, Span};

fn run_delay_heal(mode: OrderMode, seed: u64) {
    let net = NetConfig::new(seed).with_latency(LatencyModel::Uniform {
        lo: Span::from_micros(100),
        hi: Span::from_millis(2),
    });
    let mut cluster = SimCluster::new(5, net);
    let cfg = GroupConfig::new(mode)
        .with_omega(Span::from_millis(5))
        .with_big_omega(Span::from_millis(60));
    cluster.bootstrap_group(GroupId(1), &[1, 2, 3, 4, 5], cfg);

    // Traffic before, during and after the partition window, from both
    // sides of the cut.
    for k in 0..12u64 {
        cluster.schedule_send(
            Instant::from_micros(2_000 + k * 4_000),
            (k % 5) as u32 + 1,
            GroupId(1),
            MessageId(k),
        );
    }
    // Cut {1,2} | {3,4,5} in delay mode at 10ms, heal at 30ms (< Ω: no
    // member may be excluded; the transport "retransmits" across the cut).
    cluster.schedule_partition_mode(
        Instant::from_micros(10_000),
        &[&[1, 2], &[3, 4, 5]],
        PartitionMode::Delay,
    );
    cluster.schedule_heal(Instant::from_micros(30_000));
    cluster.run_for(Span::from_millis(1_000));

    // The cut actually parked traffic, and the heal released it: every
    // member delivered every tagged message.
    let stats = cluster.net_stats();
    assert!(stats.parked > 0, "cut never parked anything (seed {seed})");
    for p in 1..=5u32 {
        let mids = cluster.history().delivered_mids(ProcessId(p), GroupId(1));
        assert_eq!(
            mids.len(),
            12,
            "P{p} missed deliveries after heal (seed {seed}): {mids:?}"
        );
    }
    // No member was excluded: everyone still holds the full initial view.
    for p in 1..=5u32 {
        let view = cluster.proc(p).view(GroupId(1)).expect("still a member");
        assert_eq!(view.len(), 5, "P{p} shrank its view (seed {seed}): {view}");
    }
    // And the full checker — causal/total order, views, exclusion barrier,
    // quiescent liveness — holds on the recorded history.
    let violations = check_all(&cluster.history(), &CheckOptions::default());
    assert!(violations.is_empty(), "seed {seed}: {violations:?}");
}

#[test]
fn delay_partition_heal_releases_parked_messages_symmetric() {
    for seed in [1u64, 7, 23] {
        run_delay_heal(OrderMode::Symmetric, seed);
    }
}

#[test]
fn delay_partition_heal_releases_parked_messages_asymmetric() {
    for seed in [3u64, 11, 31] {
        run_delay_heal(OrderMode::Asymmetric, seed);
    }
}
