//! End-to-end tests of the real multi-process TCP stack, in-process:
//! several `serve` event loops on their own threads, a real
//! [`RemoteCluster`] client over loopback control connections, and the
//! chaos proxy interposed on the data plane.

use newtop_harness::proxy::{run_proxy, ProxyConfig};
use newtop_harness::remote::{members_of, serve, RemoteCluster, ServeConfig};
use newtop_runtime::Output;
use newtop_types::{GroupId, ProcessId, Span};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    // Hold all listeners while picking so the ports are distinct.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn fast(mut cfg: ServeConfig) -> ServeConfig {
    cfg.omega = Span::from_millis(5);
    cfg.big_omega = Span::from_secs(30);
    cfg
}

/// Drains every node's outputs until each group member has `expect`
/// deliveries of its group (or the deadline passes), returning the
/// per-node payload sequences.
fn collect_deliveries(
    remote: &RemoteCluster,
    groups: &[(GroupId, Vec<ProcessId>)],
    expect: usize,
    deadline: Duration,
) -> BTreeMap<ProcessId, Vec<Vec<u8>>> {
    let mut got: BTreeMap<ProcessId, Vec<Vec<u8>>> = BTreeMap::new();
    let rxs: Vec<(ProcessId, _)> = groups
        .iter()
        .flat_map(|(_, members)| members.iter().copied())
        .map(|m| (m, remote.outputs(m).expect("known node")))
        .collect();
    for &(m, _) in &rxs {
        got.insert(m, Vec::new());
    }
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        let mut all_done = true;
        for &(m, ref rx) in &rxs {
            while let Ok(out) = rx.try_recv() {
                if let Output::Delivery(d) = out {
                    got.get_mut(&m).expect("tracked").push(d.payload.to_vec());
                }
            }
            if got[&m].len() < expect {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    got
}

/// Three serve processes (as threads), two groups spanning all of them,
/// driven over the control plane: every member of a group sees every
/// group message, all members agree on the order, the wire moved real
/// frames, and shutdown tears all three down cleanly.
#[test]
fn three_peer_cluster_agrees_and_shuts_down() {
    let addrs = free_addrs(6);
    let (peers, ctrl) = (addrs[..3].to_vec(), addrs[3..].to_vec());
    let (nodes, groups) = (6u32, 2u32);
    let mut servers = Vec::new();
    for me in 0..3usize {
        let cfg = fast(ServeConfig::new(
            nodes,
            groups,
            peers.clone(),
            ctrl.clone(),
            me,
        ));
        servers.push(std::thread::spawn(move || serve(&cfg)));
    }
    let remote =
        RemoteCluster::connect(&ctrl, nodes, Duration::from_secs(15)).expect("client connects");
    let group_list: Vec<(GroupId, Vec<ProcessId>)> = (0..groups)
        .map(|g| (GroupId(g + 1), members_of(g, nodes, groups)))
        .collect();
    let per_group = 20usize;
    for (gid, members) in &group_list {
        for k in 0..per_group {
            let sender = members[k % members.len()];
            let payload = format!("g{}:{k:03}", gid.0).into_bytes();
            remote
                .multicast(sender, *gid, &payload)
                .expect("multicast accepted");
        }
    }
    let got = collect_deliveries(&remote, &group_list, per_group, Duration::from_secs(30));
    for (gid, members) in &group_list {
        let reference = &got[&members[0]];
        assert_eq!(
            reference.len(),
            per_group,
            "group {} member {} must deliver everything",
            gid.0,
            members[0].0
        );
        for m in &members[1..] {
            assert_eq!(
                &got[m], reference,
                "group {} members {} and {} disagree on delivery order",
                gid.0, members[0].0, m.0
            );
        }
    }
    let wire = remote.wire_stats().expect("stats answered");
    assert!(wire.frames > 0, "a real cluster ships frames");
    assert_eq!(wire.handshake_rejects, 0);
    assert!(remote.shards_used() >= 3, "each peer runs >= 1 shard");
    remote.shutdown_peers();
    for s in servers {
        s.join().expect("serve thread").expect("serve exits clean");
    }
}

/// Two peers whose data link runs through the chaos proxy with drops,
/// delay and reorder: every interference resolves through the
/// sever-and-resume path, so both members still deliver the complete
/// message sequence in the same order, and shutdown stays clean.
#[test]
fn chaos_proxy_drop_delay_roundtrip_stays_exact() {
    let addrs = free_addrs(5);
    let (data, ctrl) = (addrs[..2].to_vec(), addrs[2..4].to_vec());
    let proxy_listen = addrs[4];
    // Peer 0 dials peer 1 through the proxy; everything else is direct.
    let mut proxy_cfg = ProxyConfig::new(vec![(proxy_listen, data[1])]);
    proxy_cfg.seed = 42;
    proxy_cfg.drop_pct = 5;
    proxy_cfg.delay_ms = 2;
    proxy_cfg.reorder_pct = 5;
    let proxy = run_proxy(&proxy_cfg).expect("proxy binds");
    let (nodes, groups) = (2u32, 1u32);
    let mut servers = Vec::new();
    for me in 0..2usize {
        let peers_view = if me == 0 {
            vec![data[0], proxy_listen]
        } else {
            data.clone()
        };
        let cfg = fast(ServeConfig::new(
            nodes,
            groups,
            peers_view,
            ctrl.clone(),
            me,
        ));
        servers.push(std::thread::spawn(move || serve(&cfg)));
    }
    let remote =
        RemoteCluster::connect(&ctrl, nodes, Duration::from_secs(15)).expect("client connects");
    let gid = GroupId(1);
    let members = members_of(0, nodes, groups);
    let total = 30usize;
    for k in 0..total {
        let sender = members[k % members.len()];
        let payload = format!("m{k:03}").into_bytes();
        remote
            .multicast(sender, gid, &payload)
            .expect("multicast accepted");
    }
    let group_list = vec![(gid, members.clone())];
    let got = collect_deliveries(&remote, &group_list, total, Duration::from_secs(45));
    let reference = &got[&members[0]];
    assert_eq!(
        reference.len(),
        total,
        "chaos must not lose application messages (got {} of {total})",
        reference.len()
    );
    assert_eq!(
        &got[&members[1]], reference,
        "chaos must not break delivery-order agreement"
    );
    let wire = remote.wire_stats().expect("stats answered");
    assert!(wire.frames > 0);
    remote.shutdown_peers();
    for s in servers {
        s.join().expect("serve thread").expect("serve exits clean");
    }
    proxy.stop();
}
