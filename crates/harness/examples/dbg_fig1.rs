use newtop_harness::{MessageId, SimCluster};
use newtop_sim::{LatencyModel, NetConfig};
use newtop_types::{GroupConfig, GroupId, Instant, OrderMode, ProcessId, Span};
fn cfg() -> GroupConfig {
    GroupConfig::new(OrderMode::Symmetric)
        .with_omega(Span::from_millis(5))
        .with_big_omega(Span::from_millis(60))
}
fn main() {
    let g1 = GroupId(1);
    let g2 = GroupId(2);
    let net = NetConfig::new(11).with_latency(LatencyModel::Uniform {
        lo: Span::from_micros(300),
        hi: Span::from_millis(2),
    });
    let mut cluster = SimCluster::new(3, net);
    cluster.bootstrap_group(g1, &[1, 2], cfg());
    cluster.schedule_send(Instant::from_micros(5_000), 1, g1, MessageId(1));
    cluster.schedule_initiate(Instant::from_micros(10_000), 3, g2, &[1, 2, 3], cfg());
    cluster.schedule_send(Instant::from_micros(40_000), 1, g2, MessageId(2));
    cluster.schedule_send(Instant::from_micros(45_000), 1, g2, MessageId(3));
    cluster.schedule_send(Instant::from_micros(50_000), 2, g1, MessageId(4));
    cluster.schedule_depart(Instant::from_micros(80_000), 2, g1);
    cluster.schedule_depart(Instant::from_micros(85_000), 2, g2);
    cluster.schedule_send(Instant::from_micros(200_000), 1, g2, MessageId(5));
    cluster.run_for(Span::from_millis(1_000));
    let h = cluster.history();
    for p in 1..=3u32 {
        println!("P{p}: groups={:?}", cluster.proc(p).group_ids());
        for g in [g1, g2] {
            if cluster.proc(p).is_member(g) {
                println!(
                    "  {g:?}: view={} d={:?} buffered={} suspicions={:?}",
                    cluster.proc(p).view(g).unwrap(),
                    cluster.proc(p).d_of(g),
                    cluster.proc(p).buffered(g),
                    cluster.proc(p).suspicions_of(g)
                );
            }
        }
        println!(
            "  di={:?} delivered={:?}",
            cluster.proc(p).di(),
            h.delivered_mids_all(ProcessId(p))
        );
    }
}
