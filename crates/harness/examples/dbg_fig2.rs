use newtop_harness::{HistoryEvent, MessageId, SimCluster};
use newtop_sim::{LatencyModel, NetConfig};
use newtop_types::{GroupConfig, GroupId, Instant, OrderMode, ProcessId, Span};
fn cfg() -> GroupConfig {
    GroupConfig::new(OrderMode::Symmetric)
        .with_omega(Span::from_millis(5))
        .with_big_omega(Span::from_millis(60))
}
fn main() {
    let g1 = GroupId(1);
    let g2 = GroupId(2);
    let g3 = GroupId(3);
    let mut cluster = SimCluster::new(
        4,
        NetConfig::new(13).with_latency(LatencyModel::Fixed(Span::from_millis(1))),
    );
    cluster.bootstrap_group(g1, &[1, 2, 4], cfg());
    cluster.bootstrap_group(g2, &[4, 3], cfg());
    cluster.bootstrap_group(g3, &[3, 2], cfg());
    cluster.schedule_send(Instant::from_micros(30_000), 1, g1, MessageId(1));
    cluster.schedule_partition(Instant::from_micros(30_050), &[&[1], &[2, 3, 4]]);
    cluster.schedule_send(Instant::from_micros(45_000), 4, g2, MessageId(2));
    cluster.schedule_send(Instant::from_micros(60_000), 3, g3, MessageId(3));
    cluster.schedule_partition(Instant::from_micros(61_000), &[&[1, 4], &[2, 3]]);
    cluster.run_for(Span::from_millis(1_000));
    let h = cluster.history();
    for p in [1u32, 4] {
        println!("--- P{p} ---");
        for e in h.events.get(&ProcessId(p)).unwrap() {
            match e {
                HistoryEvent::Protocol { at, event } => println!("  {at} {event:?}"),
                HistoryEvent::ViewChange {
                    at, view, group, ..
                } => println!("  {at} VIEW {group} {view}"),
                HistoryEvent::Delivered { at, mid, delivery } => println!(
                    "  {at} DELIVER {mid:?} in {} viewseq {}",
                    delivery.group, delivery.view_seq
                ),
                _ => {}
            }
        }
    }
}
