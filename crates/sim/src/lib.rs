//! Deterministic discrete-event network simulator for the Newtop
//! reproduction.
//!
//! The paper assumes a message transport layer "permitting uncorrupted and
//! sequenced message transmission between a sender and destination
//! processes, if the processes are alive and the destination processes are
//! not partitioned from the sender" (§3). This crate is that substrate,
//! built for experiments rather than production traffic:
//!
//! * **Virtual time** — a microsecond event clock; no wall-clock, no
//!   threads, perfectly repeatable.
//! * **Reliable FIFO links** — every ordered pair of nodes is a link;
//!   random per-message latency is clamped so arrivals never reorder
//!   (matching the paper's sequenced-transmission assumption).
//! * **Fault injection** — crashes (which can sever a multicast mid-flight,
//!   as in the paper's Example 1), network partitions with either
//!   *loss* semantics (messages crossing the cut are dropped — a permanent
//!   or UDP-style partition) or *delay* semantics (messages are parked and
//!   released on heal — a TCP-style transient partition), and healing.
//! * **Determinism** — all randomness comes from a seeded
//!   [`rand::rngs::StdRng`]; the same seed and script replay the same
//!   history, so failing property tests reproduce exactly.
//! * **Pluggable WAN realism** — [`Sim::set_wan`] swaps the default
//!   constant-latency transport (preserved bit-identical when off) for a
//!   topology-aware model: regions, finite-capacity uplinks and asymmetric
//!   inter-region trunks with fair-share bandwidth, plus seeded
//!   duplication/reorder knobs (see [`WanConfig`] and the `wan` module
//!   docs).
//!
//! The simulator is generic over the node behaviour ([`SimNode`]) and the
//! message type, so the baseline protocols (vector-clock causal multicast,
//! sequencer ABCAST, Lamport total order) run on the very same network
//! model as Newtop itself.
//!
//! # Examples
//!
//! A two-node ping-pong, exchanged over a 1 ms fixed-latency network:
//!
//! ```
//! use newtop_sim::{LatencyModel, NetConfig, Outbox, Sim, SimNode};
//! use newtop_types::{Instant, ProcessId, Span};
//!
//! struct Pinger {
//!     peer: ProcessId,
//!     got: u32,
//! }
//!
//! impl SimNode for Pinger {
//!     type Msg = u32;
//!     fn on_message(&mut self, _now: Instant, _from: ProcessId, msg: u32,
//!                   out: &mut Outbox<u32>) {
//!         self.got = msg;
//!         if msg < 3 {
//!             out.send(self.peer, msg + 1);
//!         }
//!     }
//! }
//!
//! let cfg = NetConfig::new(7).with_latency(LatencyModel::Fixed(Span::from_millis(1)));
//! let mut sim = Sim::new(cfg);
//! sim.add_node(ProcessId(1), Pinger { peer: ProcessId(2), got: 0 });
//! sim.add_node(ProcessId(2), Pinger { peer: ProcessId(1), got: 0 });
//! sim.schedule_call(Instant::ZERO, ProcessId(1), |n: &mut Pinger, out| {
//!     out.send(n.peer, 1);
//! });
//! sim.run_until(Instant::from_micros(10_000));
//! assert_eq!(sim.node(ProcessId(2)).unwrap().got, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod sim;
mod wan;

pub use model::{LatencyModel, NetConfig, NetStats, PartitionMode, PartitionSpec};
pub use sim::{Outbox, PendingEvent, Sim, SimNode};
pub use wan::{WanAttachment, WanConfig, WanLinkSpec, WanRoute};
