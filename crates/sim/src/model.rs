//! Network model: latency distributions, partitions and counters.

use newtop_types::{ConfigError, ProcessId, Span};
use rand::Rng;
use std::collections::BTreeSet;

/// Per-message one-way latency distribution of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(Span),
    /// Uniformly distributed in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum one-way latency.
        lo: Span,
        /// Maximum one-way latency.
        hi: Span,
    },
}

impl LatencyModel {
    /// Checks the model's invariants (`Uniform` needs `lo <= hi`).
    ///
    /// Validation happens once, where a model enters a configuration
    /// ([`NetConfig::validate`], the WAN config builders, the chaos script
    /// parser) — not per sample on the hot path.
    ///
    /// # Errors
    ///
    /// [`ConfigError::LatencyBoundsInverted`] for a `Uniform` with
    /// `lo > hi`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            LatencyModel::Fixed(_) => Ok(()),
            LatencyModel::Uniform { lo, hi } => {
                if lo <= hi {
                    Ok(())
                } else {
                    Err(ConfigError::LatencyBoundsInverted { lo, hi })
                }
            }
        }
    }

    /// Draws one latency sample. The caller guarantees the model passed
    /// [`LatencyModel::validate`]; inverted bounds are a debug-only check
    /// here rather than a per-sample panic in release runs.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Span {
        match *self {
            LatencyModel::Fixed(s) => s,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform latency bounds inverted");
                Span::from_micros(rng.gen_range(lo.as_micros()..=hi.as_micros()))
            }
        }
    }

    /// The largest latency this model can produce.
    #[must_use]
    pub fn max(&self) -> Span {
        match *self {
            LatencyModel::Fixed(s) => s,
            LatencyModel::Uniform { hi, .. } => hi,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::Fixed(Span::from_millis(1))
    }
}

/// What happens to messages that would cross a partition cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Crossing messages are dropped — models a long-lived partition (or a
    /// datagram transport). This is the behaviour of the paper's scenarios:
    /// "a network partition disconnects Pk from Pi … consequently Pi and Pj
    /// do not receive m1".
    #[default]
    Loss,
    /// Crossing messages are parked and released, in order, when the
    /// partition heals — models transport-level retransmission across a
    /// transient partition.
    Delay,
}

/// A partition of the node population into disjoint connectivity blocks.
///
/// Nodes in different blocks cannot exchange messages. Nodes not mentioned
/// in any block form one implicit residual block together.
///
/// # Examples
///
/// ```
/// use newtop_sim::PartitionSpec;
/// use newtop_types::ProcessId;
/// let spec = PartitionSpec::split([ProcessId(1), ProcessId(2)]);
/// assert!(!spec.connected(ProcessId(1), ProcessId(3)));
/// assert!(spec.connected(ProcessId(1), ProcessId(2)));
/// assert!(spec.connected(ProcessId(3), ProcessId(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSpec {
    blocks: Vec<BTreeSet<ProcessId>>,
}

impl PartitionSpec {
    /// No partition: everyone is connected.
    #[must_use]
    pub fn connected_all() -> PartitionSpec {
        PartitionSpec { blocks: Vec::new() }
    }

    /// Splits the given nodes away from everyone else (two blocks: `inside`
    /// and the residual rest).
    pub fn split<I: IntoIterator<Item = ProcessId>>(inside: I) -> PartitionSpec {
        PartitionSpec {
            blocks: vec![inside.into_iter().collect()],
        }
    }

    /// An explicit multi-block partition. Nodes absent from every block form
    /// one residual block.
    #[must_use]
    pub fn blocks(blocks: Vec<BTreeSet<ProcessId>>) -> PartitionSpec {
        PartitionSpec { blocks }
    }

    /// The index of the block containing `p`, or `None` for the implicit
    /// residual block. The engine caches this per node so the per-send
    /// connectivity test is one integer compare.
    #[must_use]
    pub fn block_of(&self, p: ProcessId) -> Option<usize> {
        self.blocks.iter().position(|b| b.contains(&p))
    }

    /// Whether `a` and `b` can currently exchange messages.
    #[must_use]
    pub fn connected(&self, a: ProcessId, b: ProcessId) -> bool {
        self.block_of(a) == self.block_of(b)
    }

    /// Whether this spec partitions anything at all.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Network configuration for a [`crate::Sim`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// RNG seed; equal seeds replay equal histories.
    pub seed: u64,
    /// Link latency distribution (applies to every ordered pair).
    pub latency: LatencyModel,
    /// Local cost of handing one message to the transport. Consecutive
    /// sends from one event leave the node this far apart, which is what
    /// lets a crash sever a multicast between destinations (Example 1).
    pub send_overhead: Span,
}

impl NetConfig {
    /// A configuration with the given seed, 1 ms fixed latency and 5 µs
    /// send overhead.
    #[must_use]
    pub fn new(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            latency: LatencyModel::default(),
            send_overhead: Span::from_micros(5),
        }
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> NetConfig {
        self.latency = latency;
        self
    }

    /// Sets the per-send local overhead.
    #[must_use]
    pub fn with_send_overhead(mut self, overhead: Span) -> NetConfig {
        self.send_overhead = overhead;
        self
    }

    /// Checks the configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`ConfigError::LatencyBoundsInverted`] for an inverted uniform
    /// latency model.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.latency.validate()
    }
}

/// Counters the simulator maintains while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a destination node.
    pub delivered: u64,
    /// Messages lost because the sender crashed before they departed.
    pub dropped_crash_src: u64,
    /// Messages lost because the destination had crashed.
    pub dropped_crash_dst: u64,
    /// Messages lost to a loss-mode partition.
    pub dropped_partition: u64,
    /// Messages currently (or cumulatively) parked by a delay-mode
    /// partition.
    pub parked: u64,
    /// Total bytes handed to the transport, when a sizer is installed.
    pub bytes_sent: u64,
    /// Extra copies injected by the WAN duplication knob.
    pub wan_duplicated: u64,
    /// Transfers currently in flight through WAN pipes.
    pub wan_inflight: u64,
    /// Peak of `wan_inflight` over the run.
    pub wan_inflight_peak: u64,
    /// Bytes currently queued or in flight through WAN pipes (backlog).
    pub wan_backlog_bytes: u64,
    /// Peak of `wan_backlog_bytes` over the run.
    pub wan_backlog_peak_bytes: u64,
    /// Bytes that completed their uplink stage — the goodput a capped
    /// uplink actually carried (the e04 plateau metric).
    pub wan_uplink_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_latency_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(Span::from_millis(2));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Span::from_millis(2));
        }
        assert_eq!(m.max(), Span::from_millis(2));
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let lo = Span::from_micros(100);
        let hi = Span::from_micros(500);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(m.max(), hi);
    }

    #[test]
    fn inverted_uniform_bounds_fail_validation_up_front() {
        let bad = LatencyModel::Uniform {
            lo: Span::from_millis(5),
            hi: Span::from_millis(1),
        };
        assert!(bad.validate().is_err());
        assert!(NetConfig::new(7).with_latency(bad).validate().is_err());
        assert!(NetConfig::new(7).validate().is_ok());
        let ok = LatencyModel::Uniform {
            lo: Span::from_millis(1),
            hi: Span::from_millis(1),
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn trivial_partition_connects_everyone() {
        let p = PartitionSpec::connected_all();
        assert!(p.is_trivial());
        assert!(p.connected(ProcessId(1), ProcessId(99)));
    }

    #[test]
    fn split_partition_separates_inside_from_rest() {
        let p = PartitionSpec::split([ProcessId(1), ProcessId(2)]);
        assert!(p.connected(ProcessId(1), ProcessId(2)));
        assert!(p.connected(ProcessId(3), ProcessId(7)));
        assert!(!p.connected(ProcessId(2), ProcessId(3)));
    }

    #[test]
    fn multi_block_partition() {
        let p = PartitionSpec::blocks(vec![
            [ProcessId(1)].into(),
            [ProcessId(2), ProcessId(3)].into(),
        ]);
        assert!(!p.connected(ProcessId(1), ProcessId(2)));
        assert!(p.connected(ProcessId(2), ProcessId(3)));
        assert!(!p.connected(ProcessId(3), ProcessId(4)));
        assert!(p.connected(ProcessId(4), ProcessId(5)));
    }

    #[test]
    fn self_connectivity_always_holds() {
        let p = PartitionSpec::split([ProcessId(1)]);
        assert!(p.connected(ProcessId(1), ProcessId(1)));
        assert!(p.connected(ProcessId(2), ProcessId(2)));
    }
}
