//! Topology-aware WAN model: finite-capacity uplinks and inter-region
//! trunks with fair-share bandwidth, plus seeded duplication/reorder knobs.
//!
//! # Model
//!
//! Every node attaches to a *region* through a finite-capacity **uplink**
//! pipe; every ordered region pair is connected by a **trunk** pipe with its
//! own capacity and (possibly asymmetric) propagation latency. A message of
//! `S` bytes is a *transfer*: it first transmits through its sender's
//! uplink, then — if the destination sits in another region — through the
//! `(from, to)` trunk (store-and-forward, so the trunk re-transmits the full
//! size), and finally experiences a propagation latency drawn from the route
//! spec (or the sim's global latency model for intra-region traffic).
//!
//! A pipe of capacity `B` bytes/s shared by `k` concurrent transfers gives
//! each `B/k` (processor sharing, dslab-network style): every start/finish/
//! capacity-change event *re-shares* the pipe — elapsed progress is drained
//! at the old rate, then every remaining transfer's completion is
//! re-scheduled at the new rate. Progress is accounted in **microbytes**
//! (1 byte = 10⁶ µb) with `u128` arithmetic, so draining is exact integer
//! math: a transfer with `r` µb left at rate `B/k` finishes in
//! `ceil(r·k/B)` µs, and draining that many microseconds at the same rate
//! removes at least `r` (`floor(ceil(r·k/B)·B/k) ≥ r`), so a scheduled
//! completion never arrives early.
//!
//! # FIFO discipline
//!
//! The simulator promises FIFO links ([`crate::SimNode::on_message`]).
//! Naive processor sharing breaks that promise: a small message sent later
//! on the same link would overtake a large earlier one. Each pipe therefore
//! admits **at most one transfer per `(src, dst)` flow** into its active
//! set; later same-flow transfers wait (consuming no bandwidth) and are
//! promoted in send order when the flow's head completes. Per-flow FIFO at
//! every stage plus the engine's arrival clamp keeps every link FIFO, and
//! the reorder knob consequently manifests as *reorder-induced queueing
//! delay* (head-of-line blocking at a resequencing receiver) rather than
//! actual out-of-order delivery — the sequenced-transport contract the
//! protocol is built on is never violated.
//!
//! # Determinism
//!
//! All state lives in `Vec`s and `BTreeMap`s iterated in deterministic
//! order; transfer ids are allocated from a deterministic free list; the
//! only randomness (latency, duplication, reorder holds) is drawn from the
//! engine's single seeded RNG at well-defined points. Equal seeds replay
//! bit-identical histories.

use crate::model::LatencyModel;
use newtop_types::{ConfigError, Instant, ProcessId, Span};
use std::collections::{BTreeMap, VecDeque};

/// Microbytes per byte: the fixed-point scale of transfer progress.
const UB_PER_BYTE: u128 = 1_000_000;

/// Capacity and propagation latency of one directed inter-region link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanLinkSpec {
    /// Propagation latency added after the transfer clears the trunk.
    pub latency: LatencyModel,
    /// Trunk capacity in bytes per second, fair-shared among transfers.
    pub capacity_bps: u64,
}

impl WanLinkSpec {
    /// A link with the given latency and capacity.
    #[must_use]
    pub fn new(latency: LatencyModel, capacity_bps: u64) -> WanLinkSpec {
        WanLinkSpec {
            latency,
            capacity_bps,
        }
    }
}

impl Default for WanLinkSpec {
    /// 30 ms fixed propagation, 1 MB/s capacity.
    fn default() -> WanLinkSpec {
        WanLinkSpec {
            latency: LatencyModel::Fixed(Span::from_millis(30)),
            capacity_bps: 1_000_000,
        }
    }
}

/// Attaches one node to a region, optionally overriding its uplink
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanAttachment {
    /// The node.
    pub p: ProcessId,
    /// The region it lives in.
    pub region: u32,
    /// Uplink capacity override (bytes/s); `None` uses the default.
    pub uplink_bps: Option<u64>,
}

/// One directed inter-region route (asymmetric by construction: `(a, b)`
/// and `(b, a)` are independent entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanRoute {
    /// Source region.
    pub from: u32,
    /// Destination region.
    pub to: u32,
    /// The link spec of this direction.
    pub spec: WanLinkSpec,
}

/// Configuration of the WAN model (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use newtop_sim::{LatencyModel, WanConfig, WanLinkSpec};
/// use newtop_types::{ProcessId, Span};
///
/// let cfg = WanConfig::new()
///     .attach(ProcessId(1), 0)
///     .attach(ProcessId(2), 1)
///     .with_default_uplink(256_000)
///     .with_route(
///         0,
///         1,
///         WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(40)), 512_000),
///     );
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanConfig {
    /// Node-to-region attachments; unlisted nodes land in region 0 with the
    /// default uplink.
    pub attachments: Vec<WanAttachment>,
    /// Uplink capacity (bytes/s) of nodes without an override.
    pub default_uplink_bps: u64,
    /// Explicit directed routes; unlisted ordered pairs use
    /// `default_route`.
    pub routes: Vec<WanRoute>,
    /// Spec of every directed region pair without an explicit route.
    pub default_route: WanLinkSpec,
    /// Transfer size assumed when the engine has no byte sizer installed.
    pub fallback_msg_bytes: u32,
    /// Per-mille probability that a delivery is duplicated.
    pub dup_permille: u32,
    /// Per-mille probability that a delivery suffers an extra reorder hold.
    pub reorder_permille: u32,
    /// Maximum extra hold for a reordered delivery (drawn uniformly from
    /// `1..=reorder_hold`).
    pub reorder_hold: Span,
}

impl Default for WanConfig {
    fn default() -> WanConfig {
        WanConfig::new()
    }
}

impl WanConfig {
    /// A single-region config: 1 MB/s uplinks, default trunks, no
    /// duplication or reordering.
    #[must_use]
    pub fn new() -> WanConfig {
        WanConfig {
            attachments: Vec::new(),
            default_uplink_bps: 1_000_000,
            routes: Vec::new(),
            default_route: WanLinkSpec::default(),
            fallback_msg_bytes: 256,
            dup_permille: 0,
            reorder_permille: 0,
            reorder_hold: Span::from_millis(1),
        }
    }

    /// Attaches `p` to `region` with the default uplink capacity.
    #[must_use]
    pub fn attach(mut self, p: ProcessId, region: u32) -> WanConfig {
        self.attachments.push(WanAttachment {
            p,
            region,
            uplink_bps: None,
        });
        self
    }

    /// Attaches `p` to `region` with an explicit uplink capacity.
    #[must_use]
    pub fn attach_with_uplink(mut self, p: ProcessId, region: u32, bps: u64) -> WanConfig {
        self.attachments.push(WanAttachment {
            p,
            region,
            uplink_bps: Some(bps),
        });
        self
    }

    /// Sets the default uplink capacity (bytes/s).
    #[must_use]
    pub fn with_default_uplink(mut self, bps: u64) -> WanConfig {
        self.default_uplink_bps = bps;
        self
    }

    /// Adds (or replaces) the directed route `from → to`.
    #[must_use]
    pub fn with_route(mut self, from: u32, to: u32, spec: WanLinkSpec) -> WanConfig {
        self.routes.retain(|r| (r.from, r.to) != (from, to));
        self.routes.push(WanRoute { from, to, spec });
        self
    }

    /// Sets the spec used by directed region pairs without an explicit
    /// route.
    #[must_use]
    pub fn with_default_route(mut self, spec: WanLinkSpec) -> WanConfig {
        self.default_route = spec;
        self
    }

    /// Sets the transfer size assumed when no byte sizer is installed.
    #[must_use]
    pub fn with_fallback_msg_bytes(mut self, bytes: u32) -> WanConfig {
        self.fallback_msg_bytes = bytes;
        self
    }

    /// Sets the per-mille delivery-duplication probability.
    #[must_use]
    pub fn with_duplication(mut self, permille: u32) -> WanConfig {
        self.dup_permille = permille;
        self
    }

    /// Sets the per-mille reorder probability and the maximum extra hold.
    #[must_use]
    pub fn with_reorder(mut self, permille: u32, hold: Span) -> WanConfig {
        self.reorder_permille = permille;
        self.reorder_hold = hold;
        self
    }

    /// Checks every capacity, latency model and probability knob.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCapacity`] for a zero-capacity uplink or trunk,
    /// [`ConfigError::LatencyBoundsInverted`] for an inverted uniform
    /// latency, [`ConfigError::BadPermille`] for a probability knob above
    /// 1000.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.default_uplink_bps == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        for a in &self.attachments {
            if a.uplink_bps == Some(0) {
                return Err(ConfigError::ZeroCapacity);
            }
        }
        for spec in self
            .routes
            .iter()
            .map(|r| &r.spec)
            .chain(std::iter::once(&self.default_route))
        {
            if spec.capacity_bps == 0 {
                return Err(ConfigError::ZeroCapacity);
            }
            spec.latency.validate()?;
        }
        for &value in &[self.dup_permille, self.reorder_permille] {
            if value > 1000 {
                return Err(ConfigError::BadPermille { value });
            }
        }
        Ok(())
    }

    fn attachment_of(&self, p: ProcessId) -> Option<&WanAttachment> {
        self.attachments.iter().find(|a| a.p == p)
    }
}

/// Which pipe a transfer currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Transmitting through the sender's uplink.
    Uplink,
    /// Transmitting through the `(from, to)` trunk.
    Trunk(u32, u32),
}

#[derive(Debug)]
struct Transfer<M> {
    /// Sender, as a dense engine node index.
    src: u32,
    /// Destination node index.
    dst: u32,
    /// Original departure instant (kept for the engine's crash semantics).
    departed: Instant,
    msg: M,
    size_bytes: u64,
    /// Untransmitted microbytes in the current stage.
    remaining_ub: u128,
    stage: Stage,
}

/// One fair-shared pipe (an uplink or a trunk).
#[derive(Debug)]
struct Pipe {
    capacity_bps: u64,
    /// Accounting horizon: progress has been drained up to here.
    last_update: Instant,
    /// Transfers currently sharing the capacity — at most one per flow.
    active: Vec<u32>,
    /// Same-flow transfers queued (in send order) behind the active one.
    waiting: BTreeMap<(u32, u32), VecDeque<u32>>,
}

impl Pipe {
    fn new(capacity_bps: u64) -> Pipe {
        Pipe {
            capacity_bps,
            last_update: Instant::ZERO,
            active: Vec::new(),
            waiting: BTreeMap::new(),
        }
    }
}

/// `(fire at, transfer id, epoch)` triples the engine must schedule as
/// `TransferDone` events. Every re-share invalidates earlier schedules by
/// bumping the per-transfer epoch.
pub(crate) type Sched = Vec<(Instant, u32, u64)>;

/// What a `TransferDone` event amounted to.
pub(crate) enum DoneOutcome<M> {
    /// A superseded schedule (re-shared or dropped since); ignore.
    Stale,
    /// The transfer cleared its uplink and entered an inter-region trunk.
    Trunked {
        /// Transfer size (for the uplink-goodput counter).
        size_bytes: u64,
    },
    /// The transfer cleared its last pipe; the engine now applies
    /// propagation latency, reorder and duplication, then delivers.
    Final {
        /// Sender node index.
        src: u32,
        /// Destination node index.
        dst: u32,
        /// Original departure instant.
        departed: Instant,
        /// The message.
        msg: M,
        /// Transfer size in bytes.
        size_bytes: u64,
        /// `Some((from, to))` if the transfer crossed regions.
        route: Option<(u32, u32)>,
        /// Whether the final stage was the uplink (intra-region traffic).
        from_uplink: bool,
    },
}

/// Runtime state of the WAN model (engine-internal).
pub(crate) struct WanState<M> {
    cfg: WanConfig,
    route_map: BTreeMap<(u32, u32), WanLinkSpec>,
    /// Region of each node, indexed by dense node index.
    region: Vec<u32>,
    /// Uplink pipe of each node, indexed by dense node index.
    uplinks: Vec<Pipe>,
    /// Trunk pipes, created lazily per directed region pair.
    trunks: BTreeMap<(u32, u32), Pipe>,
    /// Transfer slots; `None` is free. Indices are transfer ids.
    transfers: Vec<Option<Transfer<M>>>,
    /// Per-slot schedule epoch; a `TransferDone` event is live only if its
    /// epoch matches. Bumped on every (re)schedule and on slot reuse.
    epochs: Vec<u64>,
    free: Vec<u32>,
}

impl<M> WanState<M> {
    /// Builds the runtime state for nodes `node_ids` (indexed by dense
    /// engine index).
    pub(crate) fn new(cfg: WanConfig, node_ids: &[ProcessId]) -> WanState<M> {
        let route_map = cfg
            .routes
            .iter()
            .map(|r| ((r.from, r.to), r.spec))
            .collect();
        let mut state = WanState {
            cfg,
            route_map,
            region: Vec::new(),
            uplinks: Vec::new(),
            trunks: BTreeMap::new(),
            transfers: Vec::new(),
            epochs: Vec::new(),
            free: Vec::new(),
        };
        for id in node_ids {
            state.attach_node(*id);
        }
        state
    }

    /// Registers a node added to the engine (region + uplink pipe).
    pub(crate) fn attach_node(&mut self, id: ProcessId) {
        let (region, bps) = match self.cfg.attachment_of(id) {
            Some(a) => (
                a.region,
                a.uplink_bps.unwrap_or(self.cfg.default_uplink_bps),
            ),
            None => (0, self.cfg.default_uplink_bps),
        };
        self.region.push(region);
        self.uplinks.push(Pipe::new(bps));
    }

    pub(crate) fn cfg(&self) -> &WanConfig {
        &self.cfg
    }

    fn route_spec(&self, from: u32, to: u32) -> WanLinkSpec {
        self.route_map
            .get(&(from, to))
            .copied()
            .unwrap_or(self.cfg.default_route)
    }

    /// Propagation latency of the directed route `from → to`.
    pub(crate) fn route_latency(&self, from: u32, to: u32) -> LatencyModel {
        self.route_spec(from, to).latency
    }

    fn alloc(&mut self, t: Transfer<M>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.epochs[id as usize] += 1;
                self.transfers[id as usize] = Some(t);
                id
            }
            None => {
                let id = self.transfers.len() as u32;
                self.transfers.push(Some(t));
                self.epochs.push(0);
                id
            }
        }
    }

    fn release(&mut self, id: u32) -> Transfer<M> {
        let t = self.transfers[id as usize].take().expect("live transfer");
        self.free.push(id);
        t
    }

    /// Admits a message into its sender's uplink.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        &mut self,
        src: u32,
        dst: u32,
        departed: Instant,
        msg: M,
        size_bytes: u64,
        now: Instant,
        sched: &mut Sched,
    ) {
        let id = self.alloc(Transfer {
            src,
            dst,
            departed,
            msg,
            size_bytes,
            remaining_ub: u128::from(size_bytes) * UB_PER_BYTE,
            stage: Stage::Uplink,
        });
        enqueue(
            &mut self.uplinks[src as usize],
            &mut self.transfers,
            &mut self.epochs,
            id,
            (src, dst),
            now,
            sched,
        );
    }

    /// Resolves a fired `TransferDone { id, epoch }` event.
    pub(crate) fn on_done(
        &mut self,
        id: u32,
        epoch: u64,
        now: Instant,
        sched: &mut Sched,
    ) -> DoneOutcome<M> {
        let idx = id as usize;
        if self.transfers.get(idx).is_none_or(Option::is_none) || self.epochs[idx] != epoch {
            return DoneOutcome::Stale;
        }
        let (src, dst, stage) = {
            let t = self.transfers[idx].as_ref().expect("checked above");
            (t.src, t.dst, t.stage)
        };
        let flow = (src, dst);
        match stage {
            Stage::Uplink => detach(
                &mut self.uplinks[src as usize],
                &mut self.transfers,
                &mut self.epochs,
                id,
                flow,
                now,
                sched,
            ),
            Stage::Trunk(a, b) => detach(
                self.trunks.get_mut(&(a, b)).expect("trunk exists"),
                &mut self.transfers,
                &mut self.epochs,
                id,
                flow,
                now,
                sched,
            ),
        }
        let (rs, rd) = (self.region[src as usize], self.region[dst as usize]);
        if stage == Stage::Uplink && rs != rd {
            // Store-and-forward onto the inter-region trunk: the full size
            // transmits again at the trunk's fair share.
            let capacity = self.route_spec(rs, rd).capacity_bps;
            let size_bytes = {
                let t = self.transfers[idx].as_mut().expect("live transfer");
                t.stage = Stage::Trunk(rs, rd);
                t.remaining_ub = u128::from(t.size_bytes) * UB_PER_BYTE;
                t.size_bytes
            };
            enqueue(
                self.trunks
                    .entry((rs, rd))
                    .or_insert_with(|| Pipe::new(capacity)),
                &mut self.transfers,
                &mut self.epochs,
                id,
                flow,
                now,
                sched,
            );
            return DoneOutcome::Trunked { size_bytes };
        }
        let t = self.release(id);
        DoneOutcome::Final {
            src: t.src,
            dst: t.dst,
            departed: t.departed,
            msg: t.msg,
            size_bytes: t.size_bytes,
            route: match stage {
                Stage::Trunk(a, b) => Some((a, b)),
                Stage::Uplink => None,
            },
            from_uplink: stage == Stage::Uplink,
        }
    }

    /// Drops every uplink-stage transfer of a crashed sender: those bytes
    /// never fully left the host. Trunk-stage transfers survive. Returns
    /// `(count, bytes)` dropped.
    pub(crate) fn drop_crashed_src(&mut self, src: u32, now: Instant) -> (u64, u64) {
        let pipe = &mut self.uplinks[src as usize];
        drain(pipe, &mut self.transfers, now);
        let mut ids: Vec<u32> = pipe.active.drain(..).collect();
        for (_, q) in std::mem::take(&mut pipe.waiting) {
            ids.extend(q);
        }
        let (mut count, mut bytes) = (0u64, 0u64);
        for id in ids {
            let t = self.release(id);
            count += 1;
            bytes += t.size_bytes;
        }
        // The emptied pipe needs no re-share; events for the dropped ids go
        // stale through their freed slots.
        (count, bytes)
    }

    /// Removes every transfer whose endpoints the new partition separates
    /// (`crossing(src, dst)`), re-sharing all pipes. Returns the removed
    /// transfers in id-allocation order; the caller imposes a canonical
    /// order before parking or dropping them.
    pub(crate) fn take_crossing(
        &mut self,
        now: Instant,
        sched: &mut Sched,
        crossing: impl Fn(u32, u32) -> bool,
    ) -> Vec<(u32, u32, Instant, M, u64)> {
        let ids: Vec<u32> = self
            .transfers
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.as_ref().is_some_and(|t| crossing(t.src, t.dst)))
            .map(|(i, _)| i as u32)
            .collect();
        if ids.is_empty() {
            return Vec::new();
        }
        // Account elapsed progress at the old shares before any membership
        // change, then remove, then re-share everything once.
        for pipe in self.uplinks.iter_mut().chain(self.trunks.values_mut()) {
            drain(pipe, &mut self.transfers, now);
        }
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let (pipe, flow) = {
                let t = self.transfers[id as usize].as_ref().expect("live transfer");
                let pipe = match t.stage {
                    Stage::Uplink => &mut self.uplinks[t.src as usize],
                    Stage::Trunk(a, b) => self.trunks.get_mut(&(a, b)).expect("trunk exists"),
                };
                (pipe, (t.src, t.dst))
            };
            pipe.active.retain(|&a| a != id);
            if let Some(q) = pipe.waiting.get_mut(&flow) {
                q.retain(|&w| w != id);
                if q.is_empty() {
                    pipe.waiting.remove(&flow);
                }
            }
            let t = self.release(id);
            out.push((t.src, t.dst, t.departed, t.msg, t.size_bytes));
        }
        for pipe in self.uplinks.iter_mut().chain(self.trunks.values_mut()) {
            resched(pipe, &self.transfers, &mut self.epochs, now, sched);
        }
        out
    }

    /// Changes the capacity (and latency spec) of the directed route
    /// `from → to`, re-sharing its live trunk if one exists.
    pub(crate) fn set_route(
        &mut self,
        from: u32,
        to: u32,
        spec: WanLinkSpec,
        now: Instant,
        sched: &mut Sched,
    ) {
        self.route_map.insert((from, to), spec);
        if let Some(pipe) = self.trunks.get_mut(&(from, to)) {
            drain(pipe, &mut self.transfers, now);
            pipe.capacity_bps = spec.capacity_bps;
            resched(pipe, &self.transfers, &mut self.epochs, now, sched);
        }
    }

    /// Changes a node's uplink capacity, re-sharing its pipe.
    pub(crate) fn set_uplink(&mut self, idx: u32, bps: u64, now: Instant, sched: &mut Sched) {
        let pipe = &mut self.uplinks[idx as usize];
        drain(pipe, &mut self.transfers, now);
        pipe.capacity_bps = bps;
        resched(pipe, &self.transfers, &mut self.epochs, now, sched);
    }

    /// Number of transfers currently held by pipes (tests).
    #[cfg(test)]
    pub(crate) fn live_transfers(&self) -> usize {
        self.transfers.iter().filter(|t| t.is_some()).count()
    }
}

/// Advances a pipe's accounting to `now`: each active transfer transmitted
/// `elapsed_µs · B / k` microbytes since `last_update`. Must run before any
/// mutation of the active set or capacity.
fn drain<M>(pipe: &mut Pipe, transfers: &mut [Option<Transfer<M>>], now: Instant) {
    let elapsed_us = now.saturating_since(pipe.last_update).as_micros();
    pipe.last_update = now;
    let k = pipe.active.len() as u128;
    if k == 0 || elapsed_us == 0 {
        return;
    }
    let per = u128::from(elapsed_us) * u128::from(pipe.capacity_bps) / k;
    for &id in &pipe.active {
        let t = transfers[id as usize].as_mut().expect("active transfer");
        t.remaining_ub = t.remaining_ub.saturating_sub(per);
    }
}

/// Re-schedules every active transfer's completion at the pipe's current
/// share, invalidating earlier schedules via an epoch bump.
fn resched<M>(
    pipe: &mut Pipe,
    transfers: &[Option<Transfer<M>>],
    epochs: &mut [u64],
    now: Instant,
    sched: &mut Sched,
) {
    let k = pipe.active.len() as u128;
    if k == 0 {
        return;
    }
    let cap = u128::from(pipe.capacity_bps);
    for &id in &pipe.active {
        let t = transfers[id as usize].as_ref().expect("active transfer");
        let t_us = (t.remaining_ub * k).div_ceil(cap);
        let at = now + Span::from_micros(u64::try_from(t_us).unwrap_or(u64::MAX));
        epochs[id as usize] += 1;
        sched.push((at, id, epochs[id as usize]));
    }
}

/// Admits `id` into `pipe`: straight into the active set if its flow is
/// idle (re-sharing the pipe), otherwise into the flow's wait queue
/// (consuming no bandwidth, so no re-share).
fn enqueue<M>(
    pipe: &mut Pipe,
    transfers: &mut [Option<Transfer<M>>],
    epochs: &mut [u64],
    id: u32,
    flow: (u32, u32),
    now: Instant,
    sched: &mut Sched,
) {
    drain(pipe, transfers, now);
    let flow_busy = pipe.waiting.contains_key(&flow)
        || pipe.active.iter().any(|&a| {
            let t = transfers[a as usize].as_ref().expect("active transfer");
            (t.src, t.dst) == flow
        });
    if flow_busy {
        pipe.waiting.entry(flow).or_default().push_back(id);
    } else {
        pipe.active.push(id);
        resched(pipe, transfers, epochs, now, sched);
    }
}

/// Removes a completed transfer from `pipe`, promotes the next same-flow
/// waiter (if any) and re-shares.
fn detach<M>(
    pipe: &mut Pipe,
    transfers: &mut [Option<Transfer<M>>],
    epochs: &mut [u64],
    id: u32,
    flow: (u32, u32),
    now: Instant,
    sched: &mut Sched,
) {
    drain(pipe, transfers, now);
    pipe.active.retain(|&a| a != id);
    if let Some(q) = pipe.waiting.get_mut(&flow) {
        if let Some(next) = q.pop_front() {
            pipe.active.push(next);
        }
        if q.is_empty() {
            pipe.waiting.remove(&flow);
        }
    }
    resched(pipe, transfers, epochs, now, sched);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn config_validation_catches_bad_knobs() {
        assert!(WanConfig::new().validate().is_ok());
        assert_eq!(
            WanConfig::new().with_default_uplink(0).validate(),
            Err(ConfigError::ZeroCapacity)
        );
        assert_eq!(
            WanConfig::new().attach_with_uplink(p(1), 0, 0).validate(),
            Err(ConfigError::ZeroCapacity)
        );
        assert_eq!(
            WanConfig::new()
                .with_route(0, 1, WanLinkSpec::new(LatencyModel::default(), 0))
                .validate(),
            Err(ConfigError::ZeroCapacity)
        );
        assert_eq!(
            WanConfig::new().with_duplication(1001).validate(),
            Err(ConfigError::BadPermille { value: 1001 })
        );
        let inverted = LatencyModel::Uniform {
            lo: Span::from_millis(9),
            hi: Span::from_millis(1),
        };
        assert!(matches!(
            WanConfig::new()
                .with_default_route(WanLinkSpec::new(inverted, 1_000))
                .validate(),
            Err(ConfigError::LatencyBoundsInverted { .. })
        ));
    }

    #[test]
    fn with_route_replaces_an_existing_direction_only() {
        let a = WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(10)), 100);
        let b = WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(20)), 200);
        let cfg = WanConfig::new()
            .with_route(0, 1, a)
            .with_route(1, 0, a)
            .with_route(0, 1, b);
        assert_eq!(cfg.routes.len(), 2);
        let st: WanState<u64> = WanState::new(cfg, &[p(1), p(2)]);
        assert_eq!(st.route_spec(0, 1), b, "replaced");
        assert_eq!(st.route_spec(1, 0), a, "reverse direction untouched");
        assert_eq!(st.route_spec(1, 2), WanLinkSpec::default(), "default");
    }

    /// A lone 1000-byte transfer on a 1000 B/s uplink takes exactly 1 s.
    #[test]
    fn solo_transfer_time_is_size_over_capacity() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 7, 1_000, Instant::ZERO, &mut sched);
        assert_eq!(sched.len(), 1);
        let (at, id, epoch) = sched[0];
        assert_eq!(at, Instant::from_micros(1_000_000));
        let mut sched2 = Sched::new();
        match st.on_done(id, epoch, at, &mut sched2) {
            DoneOutcome::Final {
                msg, from_uplink, ..
            } => {
                assert_eq!(msg, 7);
                assert!(from_uplink);
            }
            _ => panic!("expected final"),
        }
        assert_eq!(st.live_transfers(), 0);
    }

    /// Two concurrent different-flow transfers halve each other's rate;
    /// when the shorter one finishes, the survivor is re-scheduled at full
    /// rate.
    #[test]
    fn fair_share_halves_and_reshares_on_finish() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2), p(3)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 1, 500, Instant::ZERO, &mut sched);
        st.start(0, 2, Instant::ZERO, 2, 1_000, Instant::ZERO, &mut sched);
        // Second start re-shares: both now at 500 B/s. Latest schedule for
        // the 500 B transfer: 1 s; for the 1000 B transfer: 2 s.
        let (at0, id0, ep0) = *sched.iter().rev().find(|(_, id, _)| *id == 0).unwrap();
        let (at1, ..) = *sched.iter().rev().find(|(_, id, _)| *id == 1).unwrap();
        assert_eq!(at0, Instant::from_micros(1_000_000));
        assert_eq!(at1, Instant::from_micros(2_000_000));
        let mut sched2 = Sched::new();
        assert!(matches!(
            st.on_done(id0, ep0, at0, &mut sched2),
            DoneOutcome::Final { msg: 1, .. }
        ));
        // Survivor had 500 B left at t=1s, now alone at 1000 B/s → 0.5 s.
        assert_eq!(sched2.len(), 1);
        assert_eq!(sched2[0].0, Instant::from_micros(1_500_000));
        // The earlier 2 s schedule is stale.
        let (_, id1, old_ep1) = (at1, sched2[0].1, 0);
        let _ = id1;
        let mut sched3 = Sched::new();
        assert!(matches!(
            st.on_done(1, old_ep1, Instant::from_micros(2_000_000), &mut sched3),
            DoneOutcome::Stale
        ));
    }

    /// Same-flow transfers never share the pipe: the second waits and is
    /// promoted when the first completes — per-flow FIFO by construction.
    #[test]
    fn same_flow_transfers_serialize_in_send_order() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 10, 1_000, Instant::ZERO, &mut sched);
        st.start(0, 1, Instant::ZERO, 11, 10, Instant::ZERO, &mut sched);
        // The tiny second message must NOT be scheduled: its flow is busy.
        assert_eq!(sched.len(), 1, "waiter consumes no bandwidth");
        let (at, id, ep) = sched[0];
        assert_eq!(at, Instant::from_micros(1_000_000), "full rate for head");
        let mut sched2 = Sched::new();
        assert!(matches!(
            st.on_done(id, ep, at, &mut sched2),
            DoneOutcome::Final { msg: 10, .. }
        ));
        // Promotion: the waiter now transmits alone.
        assert_eq!(sched2.len(), 1);
        assert_eq!(sched2[0].0, at + Span::from_micros(10_000));
        let mut sched3 = Sched::new();
        assert!(matches!(
            st.on_done(sched2[0].1, sched2[0].2, sched2[0].0, &mut sched3),
            DoneOutcome::Final { msg: 11, .. }
        ));
    }

    /// Cross-region transfers store-and-forward through the trunk and
    /// report the route for the latency draw.
    #[test]
    fn cross_region_goes_uplink_then_trunk() {
        let cfg = WanConfig::new()
            .attach(p(1), 0)
            .attach(p(2), 1)
            .with_default_uplink(1_000)
            .with_route(
                0,
                1,
                WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(40)), 2_000),
            );
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 9, 1_000, Instant::ZERO, &mut sched);
        let (at, id, ep) = sched[0];
        assert_eq!(at, Instant::from_micros(1_000_000), "uplink at 1000 B/s");
        let mut sched2 = Sched::new();
        assert!(matches!(
            st.on_done(id, ep, at, &mut sched2),
            DoneOutcome::Trunked { size_bytes: 1_000 }
        ));
        // Trunk stage: full size again at 2000 B/s → +0.5 s.
        assert_eq!(sched2.len(), 1);
        let (at2, id2, ep2) = sched2[0];
        assert_eq!(at2, at + Span::from_micros(500_000));
        let mut sched3 = Sched::new();
        match st.on_done(id2, ep2, at2, &mut sched3) {
            DoneOutcome::Final {
                route, from_uplink, ..
            } => {
                assert_eq!(route, Some((0, 1)));
                assert!(!from_uplink);
            }
            _ => panic!("expected final"),
        }
    }

    #[test]
    fn crashed_sender_loses_uplink_stage_transfers() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2), p(3)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 1, 100, Instant::ZERO, &mut sched);
        st.start(0, 1, Instant::ZERO, 2, 100, Instant::ZERO, &mut sched);
        st.start(0, 2, Instant::ZERO, 3, 100, Instant::ZERO, &mut sched);
        let (count, bytes) = st.drop_crashed_src(0, Instant::from_micros(10));
        assert_eq!((count, bytes), (3, 300));
        assert_eq!(st.live_transfers(), 0);
        // All previously scheduled completions are now stale.
        for (at, id, ep) in sched {
            let mut s = Sched::new();
            assert!(matches!(st.on_done(id, ep, at, &mut s), DoneOutcome::Stale));
        }
    }

    #[test]
    fn take_crossing_removes_and_reshares() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2), p(3)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 1, 1_000, Instant::ZERO, &mut sched);
        st.start(0, 2, Instant::ZERO, 2, 1_000, Instant::ZERO, &mut sched);
        let mut sched2 = Sched::new();
        let taken = st.take_crossing(Instant::from_micros(500_000), &mut sched2, |_, d| d == 1);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].3, 1, "the transfer to node 1 was severed");
        assert_eq!(st.live_transfers(), 1);
        // Survivor had transmitted 250 B of 1000 at the half share; alone at
        // 1000 B/s it needs 750 ms more.
        let last = sched2.last().unwrap();
        assert_eq!(last.0, Instant::from_micros(1_250_000));
    }

    #[test]
    fn set_uplink_reshares_live_transfers() {
        let cfg = WanConfig::new().with_default_uplink(1_000);
        let mut st: WanState<u64> = WanState::new(cfg, &[p(1), p(2)]);
        let mut sched = Sched::new();
        st.start(0, 1, Instant::ZERO, 1, 1_000, Instant::ZERO, &mut sched);
        let mut sched2 = Sched::new();
        st.set_uplink(0, 100, Instant::from_micros(500_000), &mut sched2);
        // 500 B left at 100 B/s → 5 s more.
        assert_eq!(sched2.len(), 1);
        assert_eq!(sched2[0].0, Instant::from_micros(5_500_000));
    }
}
