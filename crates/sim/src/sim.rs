//! The discrete-event engine.
//!
//! Internally the engine addresses nodes by a dense compact index (assigned
//! at [`Sim::add_node`] time): hot-path events (`Deliver`, `Wake`) carry the
//! index, node state lives in an index-parallel `Vec`, and per-link FIFO
//! clamping state is a dense `n × n` matrix — no map lookups or allocation
//! on the per-event path. Scratch [`Outbox`]es are pooled and reused across
//! dispatches. The public API stays [`ProcessId`]-keyed.

use crate::model::{LatencyModel, NetConfig, NetStats, PartitionMode, PartitionSpec};
use crate::wan::{DoneOutcome, Sched, WanConfig, WanLinkSpec, WanState};
use newtop_types::digest::{DigestHasher, StateDigest};
use newtop_types::{ConfigError, Instant, ProcessId, Span};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::binary_heap::PeekMut;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Behaviour of one simulated node.
///
/// Implementations receive messages and timer wake-ups and respond by
/// writing sends into the provided [`Outbox`]. The engine owns scheduling:
/// after every callback it consults [`SimNode::next_deadline`] and arranges
/// the next [`SimNode::on_tick`] accordingly.
pub trait SimNode {
    /// The message type this node exchanges.
    type Msg;

    /// A message has arrived on the (reliable, FIFO) link from `from`.
    fn on_message(
        &mut self,
        now: Instant,
        from: ProcessId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    );

    /// The engine woke the node at (or after) its requested deadline.
    fn on_tick(&mut self, now: Instant, out: &mut Outbox<Self::Msg>) {
        let _ = (now, out);
    }

    /// The next instant at which the node wants [`SimNode::on_tick`] to run,
    /// or `None` if it has no pending timer.
    fn next_deadline(&self) -> Option<Instant> {
        None
    }
}

/// Collects the sends a node produces while handling one event.
#[derive(Debug)]
pub struct Outbox<M> {
    sends: Vec<(ProcessId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Outbox<M> {
        Outbox::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox. Mostly useful for driving a [`SimNode`]
    /// implementation directly in unit tests; inside a simulation the
    /// engine provides the outbox.
    #[must_use]
    pub fn new() -> Outbox<M> {
        Outbox { sends: Vec::new() }
    }

    /// Drains the queued `(destination, message)` pairs (test helper; the
    /// engine consumes the outbox internally).
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        self.sends.drain(..)
    }

    /// Queues a unicast to `dst`. A multicast is a sequence of these; the
    /// engine spaces consecutive sends by the configured send overhead, so
    /// a crash can sever the sequence between destinations (Example 1 of
    /// the paper needs exactly this failure mode).
    pub fn send(&mut self, dst: ProcessId, msg: M) {
        self.sends.push((dst, msg));
    }

    /// Number of sends queued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether no sends are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

type CallFn<N> = Box<dyn FnOnce(&mut N, &mut Outbox<<N as SimNode>::Msg>)>;

/// One schedulable event on the current frontier, as exposed by
/// [`Sim::pending_events`] for externally controlled scheduling (the model
/// checker). Identity is by link or node — [`Sim::fire`] resolves a
/// `Deliver` to the FIFO head of that link and a `Wake` to the node's
/// current (non-stale) wake-up, so a strategy cannot violate the FIFO
/// transport assumption by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PendingEvent {
    /// The head-of-line message on the FIFO link `src → dst` is deliverable.
    Deliver {
        /// Sending node.
        src: ProcessId,
        /// Receiving node (not crashed).
        dst: ProcessId,
        /// Scheduled arrival instant of the head message.
        at: Instant,
    },
    /// `node`'s pending timer wake-up can fire.
    Wake {
        /// The node whose [`SimNode::on_tick`] would run.
        node: ProcessId,
        /// The scheduled wake instant.
        at: Instant,
    },
}

/// Compact per-`Sim` node index (position in the dense node table).
type NodeIdx = u32;

enum EventKind<N: SimNode> {
    Deliver {
        src: NodeIdx,
        dst: NodeIdx,
        departed: Instant,
        msg: N::Msg,
    },
    Wake {
        node: NodeIdx,
        epoch: u64,
    },
    Crash(ProcessId),
    SetPartition(PartitionSpec, PartitionMode),
    SetLatency(LatencyModel),
    Heal,
    Call(ProcessId, CallFn<N>),
    /// A WAN transfer's scheduled completion. Stale when the transfer was
    /// re-shared or dropped since (epoch mismatch / freed slot).
    TransferDone {
        id: u32,
        epoch: u64,
    },
    /// Changes a directed inter-region route (WAN model only).
    SetWanLink {
        from: u32,
        to: u32,
        spec: WanLinkSpec,
    },
    /// Changes a node's uplink capacity (WAN model only).
    SetWanUplink {
        p: ProcessId,
        bps: u64,
    },
}

struct Event<N: SimNode> {
    at: Instant,
    seq: u64,
    kind: EventKind<N>,
}

impl<N: SimNode> PartialEq for Event<N> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<N: SimNode> Eq for Event<N> {}
impl<N: SimNode> PartialOrd for Event<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N: SimNode> Ord for Event<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeEntry<N> {
    id: ProcessId,
    node: N,
    crashed: bool,
    wake_epoch: u64,
    wake_at: Option<Instant>,
    /// Connectivity block under the current partition (`BLOCK_RESIDUAL` for
    /// nodes in the implicit residual block). Recomputed on every partition
    /// change so the per-send connectivity test is one integer compare.
    block: u32,
}

/// Block id of nodes not named by any partition block.
const BLOCK_RESIDUAL: u32 = u32::MAX;

/// Messages parked on a severed link, keyed by ordered (from, to) pair,
/// with their original send instants. Kept id-ordered (not index-ordered)
/// so heal-time release order is independent of node insertion order.
type ParkedLinks<M> = BTreeMap<(ProcessId, ProcessId), VecDeque<(Instant, M)>>;

/// Reports the wire size of a message for the `bytes_sent` counter.
type MsgSizer<M> = Box<dyn Fn(&M) -> usize>;

/// Clones a message for the WAN duplication knob (installed by
/// [`Sim::set_wan`], which is where the `Clone` bound lives — the engine
/// itself never requires `M: Clone`).
type MsgCloner<M> = Box<dyn Fn(&M) -> M>;

/// The deterministic discrete-event simulator.
///
/// See the [crate documentation](crate) for an overview and an example.
pub struct Sim<N: SimNode> {
    now: Instant,
    seq: u64,
    queue: BinaryHeap<Event<N>>,
    /// Dense node table, indexed by [`NodeIdx`] in insertion order.
    nodes: Vec<NodeEntry<N>>,
    /// `(id, idx)` sorted by id — the public-API translation table.
    lookup: Vec<(ProcessId, NodeIdx)>,
    rng: StdRng,
    config: NetConfig,
    partition: PartitionSpec,
    partition_mode: PartitionMode,
    parked: ParkedLinks<N::Msg>,
    /// Dense per-link FIFO clamp state: `last_arrival[src * n + dst]` is the
    /// latest arrival scheduled on that link. Bounded at `n²` by
    /// construction (the `HashMap` it replaces grew an entry per ever-used
    /// link and was never pruned across heal/partition cycles).
    last_arrival: Vec<Instant>,
    /// Recycled scratch buffers: one dispatch borrows one, flush drains it
    /// and returns it — the hot path allocates nothing after warm-up.
    outbox_pool: Vec<Outbox<N::Msg>>,
    stats: NetStats,
    sizer: Option<MsgSizer<N::Msg>>,
    /// The WAN model, when enabled via [`Sim::set_wan`]; `None` keeps the
    /// default constant-latency transport bit-identical.
    wan: Option<WanState<N::Msg>>,
    cloner: Option<MsgCloner<N::Msg>>,
    /// Recycled scratch buffer for WAN completion schedules.
    wan_sched: Sched,
}

impl<N: SimNode> Sim<N> {
    /// Creates an empty simulation, validating the network configuration.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] from [`NetConfig::validate`] (e.g. inverted
    /// uniform latency bounds) — caught here, once, instead of panicking
    /// per sample mid-run.
    pub fn try_new(config: NetConfig) -> Result<Sim<N>, ConfigError> {
        config.validate()?;
        Ok(Sim {
            now: Instant::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            lookup: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            partition: PartitionSpec::connected_all(),
            partition_mode: PartitionMode::Loss,
            parked: BTreeMap::new(),
            last_arrival: Vec::new(),
            outbox_pool: Vec::new(),
            stats: NetStats::default(),
            sizer: None,
            wan: None,
            cloner: None,
            wan_sched: Sched::new(),
        })
    }

    /// Creates an empty simulation with the given network configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`Sim::try_new`] returns the
    /// error instead.
    #[must_use]
    pub fn new(config: NetConfig) -> Sim<N> {
        match Sim::try_new(config) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid network configuration: {e}"),
        }
    }

    /// Installs a function that reports the wire size of a message, enabling
    /// the `bytes_sent` counter.
    pub fn set_sizer(&mut self, sizer: impl Fn(&N::Msg) -> usize + 'static) {
        self.sizer = Some(Box::new(sizer));
    }

    fn idx_of(&self, id: ProcessId) -> Option<NodeIdx> {
        self.lookup
            .binary_search_by_key(&id, |(pid, _)| *pid)
            .ok()
            .map(|pos| self.lookup[pos].1)
    }

    /// Adds a node. Panics if the id is already present.
    ///
    /// # Panics
    ///
    /// Panics on duplicate `id`.
    pub fn add_node(&mut self, id: ProcessId, node: N) {
        let pos = match self.lookup.binary_search_by_key(&id, |(pid, _)| *pid) {
            Ok(_) => panic!("duplicate node id {id}"),
            Err(pos) => pos,
        };
        let idx = self.nodes.len() as NodeIdx;
        let deadline = node.next_deadline();
        let block = partition_block(&self.partition, id);
        self.nodes.push(NodeEntry {
            id,
            node,
            crashed: false,
            wake_epoch: 0,
            wake_at: None,
            block,
        });
        self.lookup.insert(pos, (id, idx));
        self.grow_fifo_matrix();
        if let Some(wan) = &mut self.wan {
            wan.attach_node(id);
        }
        if deadline.is_some() {
            self.refresh_wake(idx);
        }
    }

    /// Re-dimensions the FIFO clamp matrix after a node was added,
    /// preserving existing per-link state.
    fn grow_fifo_matrix(&mut self) {
        let n = self.nodes.len();
        let old_n = n - 1;
        let mut next = vec![Instant::ZERO; n * n];
        for src in 0..old_n {
            next[src * n..src * n + old_n]
                .copy_from_slice(&self.last_arrival[src * old_n..(src + 1) * old_n]);
        }
        self.last_arrival = next;
    }

    /// Immutable access to a node's behaviour.
    #[must_use]
    pub fn node(&self, id: ProcessId) -> Option<&N> {
        self.idx_of(id).map(|i| &self.nodes[i as usize].node)
    }

    /// Mutable access to a node's behaviour (for inspection between runs;
    /// sends produced outside callbacks are not observed). After mutating a
    /// node this way, call [`Sim::poke`] so the engine re-reads its timer.
    pub fn node_mut(&mut self, id: ProcessId) -> Option<&mut N> {
        self.idx_of(id).map(|i| &mut self.nodes[i as usize].node)
    }

    /// Re-reads `id`'s [`SimNode::next_deadline`] and (re)schedules its
    /// wake-up. Required after mutating a node through [`Sim::node_mut`],
    /// because the engine otherwise only refreshes timers after events.
    pub fn poke(&mut self, id: ProcessId) {
        if let Some(idx) = self.idx_of(id) {
            self.refresh_wake(idx);
        }
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (ProcessId, &N)> {
        self.lookup
            .iter()
            .map(|(id, idx)| (*id, &self.nodes[*idx as usize].node))
    }

    /// Whether `id` has crashed.
    #[must_use]
    pub fn crashed(&self, id: ProcessId) -> bool {
        self.idx_of(id)
            .is_some_and(|i| self.nodes[i as usize].crashed)
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Network counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The current partition.
    #[must_use]
    pub fn partition(&self) -> &PartitionSpec {
        &self.partition
    }

    /// Size of the per-link FIFO clamp state, in entries — a memory proxy
    /// for tests: it must stay exactly `n²` no matter how many partition,
    /// heal or latency episodes a long run goes through.
    #[must_use]
    pub fn fifo_state_entries(&self) -> usize {
        self.last_arrival.len()
    }

    fn push(&mut self, at: Instant, kind: EventKind<N>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Schedules a crash of `p` at time `at`. Messages that have not yet
    /// departed `p`'s send pipeline by then are lost.
    pub fn schedule_crash(&mut self, at: Instant, p: ProcessId) {
        self.push(at, EventKind::Crash(p));
    }

    /// Schedules a partition to take effect at `at`.
    pub fn schedule_partition(&mut self, at: Instant, spec: PartitionSpec, mode: PartitionMode) {
        self.push(at, EventKind::SetPartition(spec, mode));
    }

    /// Schedules the network to heal (all nodes reconnected) at `at`.
    pub fn schedule_heal(&mut self, at: Instant) {
        self.push(at, EventKind::Heal);
    }

    /// Schedules the link latency model to change at `at` — fault scripts
    /// use this for congestion phases (a latency spike past ω stresses the
    /// time-silence machinery without severing any link). Messages already
    /// in flight keep their sampled arrival times. Under the WAN model this
    /// governs intra-region propagation (routes carry their own latency).
    ///
    /// # Panics
    ///
    /// Panics at schedule time on an invalid model (inverted uniform
    /// bounds) — never mid-run at a sample.
    pub fn schedule_set_latency(&mut self, at: Instant, latency: LatencyModel) {
        if let Err(e) = latency.validate() {
            panic!("invalid latency model scheduled: {e}");
        }
        self.push(at, EventKind::SetLatency(latency));
    }

    /// Schedules a change of the directed inter-region route `from → to`
    /// (capacity and propagation latency) — the geo chaos family uses this
    /// for congestion windows and asymmetric degradation. Transfers in
    /// flight on the trunk are re-shared at the new capacity. A no-op while
    /// the WAN model is off.
    ///
    /// # Panics
    ///
    /// Panics at schedule time on an invalid spec (zero capacity or
    /// inverted latency bounds).
    pub fn schedule_set_wan_link(&mut self, at: Instant, from: u32, to: u32, spec: WanLinkSpec) {
        assert!(spec.capacity_bps > 0, "WAN link capacity must be positive");
        if let Err(e) = spec.latency.validate() {
            panic!("invalid WAN link latency scheduled: {e}");
        }
        self.push(at, EventKind::SetWanLink { from, to, spec });
    }

    /// Schedules a change of `p`'s uplink capacity (bytes per second),
    /// re-sharing its in-flight transfers. A no-op while the WAN model is
    /// off.
    ///
    /// # Panics
    ///
    /// Panics at schedule time on a zero capacity.
    pub fn schedule_set_wan_uplink(&mut self, at: Instant, p: ProcessId, bytes_per_sec: u64) {
        assert!(bytes_per_sec > 0, "uplink capacity must be positive");
        self.push(
            at,
            EventKind::SetWanUplink {
                p,
                bps: bytes_per_sec,
            },
        );
    }

    /// Whether the WAN model is enabled.
    #[must_use]
    pub fn wan_enabled(&self) -> bool {
        self.wan.is_some()
    }

    /// Schedules an arbitrary call into node `p` at `at` — the hook through
    /// which experiment scripts trigger application sends.
    pub fn schedule_call(
        &mut self,
        at: Instant,
        p: ProcessId,
        f: impl FnOnce(&mut N, &mut Outbox<N::Msg>) + 'static,
    ) {
        self.push(at, EventKind::Call(p, Box::new(f)));
    }

    /// Runs the simulation up to and including events at `until`, then
    /// advances the clock to `until`.
    pub fn run_until(&mut self, until: Instant) {
        loop {
            let Some(top) = self.queue.peek_mut() else {
                break;
            };
            if top.at > until {
                break;
            }
            let ev = PeekMut::pop(top);
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = until;
    }

    /// Runs for `span` beyond the current clock.
    pub fn run_for(&mut self, span: Span) {
        self.run_until(self.now + span);
    }

    /// Processes exactly one event, returning `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            None => false,
            Some(ev) => {
                self.now = ev.at;
                self.dispatch(ev);
                true
            }
        }
    }

    fn take_outbox(&mut self) -> Outbox<N::Msg> {
        self.outbox_pool.pop().unwrap_or_default()
    }

    fn recycle_outbox(&mut self, out: Outbox<N::Msg>) {
        debug_assert!(out.sends.is_empty(), "recycled outbox must be drained");
        self.outbox_pool.push(out);
    }

    fn dispatch(&mut self, ev: Event<N>) {
        match ev.kind {
            EventKind::Deliver { src, dst, msg, .. } => {
                if self.nodes[dst as usize].crashed {
                    self.stats.dropped_crash_dst += 1;
                    return;
                }
                self.stats.delivered += 1;
                let from = self.nodes[src as usize].id;
                let now = self.now;
                let mut out = self.take_outbox();
                self.nodes[dst as usize]
                    .node
                    .on_message(now, from, msg, &mut out);
                self.flush_outbox(dst, &mut out);
                self.recycle_outbox(out);
                self.refresh_wake(dst);
            }
            EventKind::Wake { node, epoch } => {
                {
                    let entry = &mut self.nodes[node as usize];
                    if entry.crashed || entry.wake_epoch != epoch {
                        return; // stale or dead
                    }
                    entry.wake_at = None;
                }
                let now = self.now;
                let mut out = self.take_outbox();
                self.nodes[node as usize].node.on_tick(now, &mut out);
                self.flush_outbox(node, &mut out);
                self.recycle_outbox(out);
                self.refresh_wake(node);
            }
            EventKind::Crash(p) => self.crash_node(p),
            EventKind::SetPartition(spec, mode) => {
                self.partition = spec;
                self.partition_mode = mode;
                for entry in &mut self.nodes {
                    entry.block = partition_block(&self.partition, entry.id);
                }
                if self.partition.is_trivial() {
                    return;
                }
                // In-flight messages crossing the new cut are lost (Loss)
                // or parked until heal (Delay).
                let mut kept: Vec<Event<N>> = Vec::with_capacity(self.queue.len());
                let mut crossing: Vec<(Instant, u64, NodeIdx, NodeIdx, Instant, N::Msg)> =
                    Vec::new();
                for ev in self.queue.drain() {
                    match ev.kind {
                        EventKind::Deliver {
                            src,
                            dst,
                            departed,
                            msg,
                        } if self.nodes[src as usize].block != self.nodes[dst as usize].block => {
                            crossing.push((ev.at, ev.seq, src, dst, departed, msg));
                        }
                        kind => kept.push(Event { kind, ..ev }),
                    }
                }
                self.queue = kept.into_iter().collect();
                crossing.sort_by_key(|(at, seq, ..)| (*at, *seq));
                for (_, _, src, dst, departed, msg) in crossing {
                    match self.partition_mode {
                        PartitionMode::Loss => self.stats.dropped_partition += 1,
                        PartitionMode::Delay => {
                            self.stats.parked += 1;
                            let key = (self.nodes[src as usize].id, self.nodes[dst as usize].id);
                            self.parked
                                .entry(key)
                                .or_default()
                                .push_back((departed, msg));
                        }
                    }
                }
                if self.wan.is_some() {
                    self.wan_partition_crossing();
                }
            }
            EventKind::SetLatency(latency) => {
                self.config.latency = latency;
            }
            EventKind::Heal => {
                self.partition = PartitionSpec::connected_all();
                for entry in &mut self.nodes {
                    entry.block = BLOCK_RESIDUAL;
                }
                let parked = std::mem::take(&mut self.parked);
                if self.wan.is_some() {
                    // Released messages re-enter the WAN as fresh transfers:
                    // crossing a healed cut costs a full re-transmission
                    // through the uplink (and trunk), not just one latency
                    // draw — a heal-time burst congests real capacity.
                    for ((src_id, dst_id), queue) in parked {
                        let (Some(src), Some(dst)) = (self.idx_of(src_id), self.idx_of(dst_id))
                        else {
                            continue;
                        };
                        for (departed, msg) in queue {
                            self.wan_admit(src, dst, departed, msg);
                        }
                    }
                    return;
                }
                for ((src_id, dst_id), queue) in parked {
                    let link = match (self.idx_of(src_id), self.idx_of(dst_id)) {
                        (Some(s), Some(d)) => Some((s, d)),
                        _ => None, // destination never existed; keep RNG parity
                    };
                    for (departed, msg) in queue {
                        let arrival = self.now + self.config.latency.sample(&mut self.rng);
                        let Some((src, dst)) = link else { continue };
                        let arrival = self.clamp_fifo(src, dst, arrival);
                        self.push(
                            arrival,
                            EventKind::Deliver {
                                src,
                                dst,
                                departed,
                                msg,
                            },
                        );
                    }
                }
            }
            EventKind::Call(p, f) => {
                let Some(idx) = self.idx_of(p) else {
                    return;
                };
                if self.nodes[idx as usize].crashed {
                    return;
                }
                let mut out = self.take_outbox();
                f(&mut self.nodes[idx as usize].node, &mut out);
                self.flush_outbox(idx, &mut out);
                self.recycle_outbox(out);
                self.refresh_wake(idx);
            }
            EventKind::TransferDone { id, epoch } => self.wan_transfer_done(id, epoch),
            EventKind::SetWanLink { from, to, spec } => {
                if let Some(mut wan) = self.wan.take() {
                    let mut sched = std::mem::take(&mut self.wan_sched);
                    wan.set_route(from, to, spec, self.now, &mut sched);
                    self.wan = Some(wan);
                    self.push_transfer_events(sched);
                }
            }
            EventKind::SetWanUplink { p, bps } => {
                let Some(idx) = self.idx_of(p) else { return };
                if let Some(mut wan) = self.wan.take() {
                    let mut sched = std::mem::take(&mut self.wan_sched);
                    wan.set_uplink(idx, bps, self.now, &mut sched);
                    self.wan = Some(wan);
                    self.push_transfer_events(sched);
                }
            }
        }
    }

    fn clamp_fifo(&mut self, src: NodeIdx, dst: NodeIdx, arrival: Instant) -> Instant {
        let n = self.nodes.len();
        let cell = &mut self.last_arrival[src as usize * n + dst as usize];
        let clamped = if arrival <= *cell {
            *cell + Span::from_micros(1)
        } else {
            arrival
        };
        *cell = clamped;
        clamped
    }

    fn flush_outbox(&mut self, src: NodeIdx, out: &mut Outbox<N::Msg>) {
        let mut sends = std::mem::take(&mut out.sends);
        let src_block = self.nodes[src as usize].block;
        for (i, (dst_id, msg)) in sends.drain(..).enumerate() {
            let departed = self.now + self.config.send_overhead.saturating_mul(i as u64 + 1);
            self.stats.sent += 1;
            if let Some(sizer) = &self.sizer {
                self.stats.bytes_sent += sizer(&msg) as u64;
            }
            // A destination that was never added still goes through the
            // partition check and latency draw (and then vanishes), so the
            // RNG stream matches the map-based engine byte for byte.
            let dst = self.idx_of(dst_id);
            let dst_block = match dst {
                Some(d) => self.nodes[d as usize].block,
                None => partition_block(&self.partition, dst_id),
            };
            if src_block != dst_block {
                match self.partition_mode {
                    PartitionMode::Loss => {
                        self.stats.dropped_partition += 1;
                        continue;
                    }
                    PartitionMode::Delay => {
                        self.stats.parked += 1;
                        let key = (self.nodes[src as usize].id, dst_id);
                        self.parked
                            .entry(key)
                            .or_default()
                            .push_back((departed, msg));
                        continue;
                    }
                }
            }
            if self.wan.is_some() {
                // Topology-aware path: transmission time comes from the
                // fair-shared pipes; latency, reorder and duplication are
                // applied when the transfer clears its last pipe. The
                // WAN-off path below is untouched, so classic seeds keep
                // their exact RNG draw sequence.
                let Some(dst) = dst else { continue };
                self.wan_admit(src, dst, departed, msg);
                continue;
            }
            let arrival = departed + self.config.latency.sample(&mut self.rng);
            let Some(dst) = dst else { continue };
            let arrival = self.clamp_fifo(src, dst, arrival);
            self.push(
                arrival,
                EventKind::Deliver {
                    src,
                    dst,
                    departed,
                    msg,
                },
            );
        }
        out.sends = sends;
    }

    /// Pushes a WAN completion schedule as `TransferDone` events, returning
    /// the scratch buffer.
    fn push_transfer_events(&mut self, mut sched: Sched) {
        for (at, id, epoch) in sched.drain(..) {
            self.push(at, EventKind::TransferDone { id, epoch });
        }
        self.wan_sched = sched;
    }

    /// Admits one send into the WAN model (uplink stage), maintaining the
    /// in-flight and backlog counters.
    fn wan_admit(&mut self, src: NodeIdx, dst: NodeIdx, departed: Instant, msg: N::Msg) {
        let size = match &self.sizer {
            Some(sizer) => (sizer(&msg) as u64).max(1),
            None => u64::from(
                self.wan
                    .as_ref()
                    .expect("WAN model present")
                    .cfg()
                    .fallback_msg_bytes
                    .max(1),
            ),
        };
        self.stats.wan_inflight += 1;
        self.stats.wan_inflight_peak = self.stats.wan_inflight_peak.max(self.stats.wan_inflight);
        self.stats.wan_backlog_bytes += size;
        self.stats.wan_backlog_peak_bytes = self
            .stats
            .wan_backlog_peak_bytes
            .max(self.stats.wan_backlog_bytes);
        let mut wan = self.wan.take().expect("WAN model present");
        let mut sched = std::mem::take(&mut self.wan_sched);
        wan.start(src, dst, departed, msg, size, self.now, &mut sched);
        self.wan = Some(wan);
        self.push_transfer_events(sched);
    }

    /// Resolves a fired `TransferDone` event: advance the transfer to its
    /// trunk stage, or apply latency/reorder/duplication and deliver.
    fn wan_transfer_done(&mut self, id: u32, epoch: u64) {
        let mut wan = self.wan.take().expect("transfer event without WAN model");
        let mut sched = std::mem::take(&mut self.wan_sched);
        let outcome = wan.on_done(id, epoch, self.now, &mut sched);
        self.wan = Some(wan);
        self.push_transfer_events(sched);
        match outcome {
            DoneOutcome::Stale => {}
            DoneOutcome::Trunked { size_bytes } => self.stats.wan_uplink_bytes += size_bytes,
            DoneOutcome::Final {
                src,
                dst,
                departed,
                msg,
                size_bytes,
                route,
                from_uplink,
            } => {
                if from_uplink {
                    self.stats.wan_uplink_bytes += size_bytes;
                }
                self.stats.wan_inflight = self.stats.wan_inflight.saturating_sub(1);
                self.stats.wan_backlog_bytes =
                    self.stats.wan_backlog_bytes.saturating_sub(size_bytes);
                self.wan_deliver(src, dst, departed, msg, route);
            }
        }
    }

    /// Applies propagation latency and the seeded reorder/duplication knobs
    /// to a transfer that cleared its last pipe, then schedules delivery.
    fn wan_deliver(
        &mut self,
        src: NodeIdx,
        dst: NodeIdx,
        departed: Instant,
        msg: N::Msg,
        route: Option<(u32, u32)>,
    ) {
        let (latency, dup_pm, reorder_pm, hold_us) = {
            let wan = self.wan.as_ref().expect("WAN model present");
            let latency = match route {
                Some((from, to)) => wan.route_latency(from, to),
                // Intra-region propagation follows the sim's global latency
                // model, so SetLatency spikes keep working under WAN.
                None => self.config.latency,
            };
            let cfg = wan.cfg();
            (
                latency,
                cfg.dup_permille,
                cfg.reorder_permille,
                cfg.reorder_hold.as_micros().max(1),
            )
        };
        let mut arrival = self.now + latency.sample(&mut self.rng);
        if reorder_pm > 0 && self.rng.gen_range(0..1000u32) < reorder_pm {
            // An out-of-order arrival surfaces as reorder-induced queueing
            // delay: the FIFO clamp models the head-of-line blocking a
            // resequencing transport would impose (see `crate::wan` docs).
            arrival += Span::from_micros(self.rng.gen_range(1..=hold_us));
        }
        let copy = if dup_pm > 0 && self.rng.gen_range(0..1000u32) < dup_pm {
            let cloner = self.cloner.as_ref().expect("set_wan installs the cloner");
            Some(cloner(&msg))
        } else {
            None
        };
        let arrival = self.clamp_fifo(src, dst, arrival);
        self.push(
            arrival,
            EventKind::Deliver {
                src,
                dst,
                departed,
                msg,
            },
        );
        if let Some(msg) = copy {
            self.stats.wan_duplicated += 1;
            let dup_arrival = self.clamp_fifo(src, dst, arrival);
            self.push(
                dup_arrival,
                EventKind::Deliver {
                    src,
                    dst,
                    departed,
                    msg,
                },
            );
        }
    }

    /// Severs WAN transfers crossing the just-installed cut: Loss drops
    /// them, Delay parks them for re-transmission at heal.
    fn wan_partition_crossing(&mut self) {
        let blocks: Vec<u32> = self.nodes.iter().map(|e| e.block).collect();
        let mut wan = self.wan.take().expect("caller checked");
        let mut sched = std::mem::take(&mut self.wan_sched);
        let taken = wan.take_crossing(self.now, &mut sched, |s, d| {
            blocks[s as usize] != blocks[d as usize]
        });
        self.wan = Some(wan);
        self.push_transfer_events(sched);
        let mut taken: Vec<(ProcessId, ProcessId, Instant, N::Msg, u64)> = taken
            .into_iter()
            .map(|(s, d, departed, msg, size)| {
                (
                    self.nodes[s as usize].id,
                    self.nodes[d as usize].id,
                    departed,
                    msg,
                    size,
                )
            })
            .collect();
        // Canonical park order: per-flow send order, flows by id — the same
        // discipline the queue-scan path imposes via (at, seq).
        taken.sort_by_key(|t| (t.0, t.1, t.2));
        for (src_id, dst_id, departed, msg, size) in taken {
            self.stats.wan_inflight = self.stats.wan_inflight.saturating_sub(1);
            self.stats.wan_backlog_bytes = self.stats.wan_backlog_bytes.saturating_sub(size);
            match self.partition_mode {
                PartitionMode::Loss => self.stats.dropped_partition += 1,
                PartitionMode::Delay => {
                    self.stats.parked += 1;
                    self.parked
                        .entry((src_id, dst_id))
                        .or_default()
                        .push_back((departed, msg));
                }
            }
        }
    }

    fn refresh_wake(&mut self, idx: NodeIdx) {
        let entry = &mut self.nodes[idx as usize];
        if entry.crashed {
            return;
        }
        let want = entry.node.next_deadline();
        match want {
            None => {
                if entry.wake_at.is_some() {
                    entry.wake_epoch += 1; // cancel outstanding wake
                    entry.wake_at = None;
                }
            }
            Some(d) => {
                let d = if d <= self.now {
                    self.now + Span::from_micros(1)
                } else {
                    d
                };
                if entry.wake_at == Some(d) {
                    return;
                }
                entry.wake_epoch += 1;
                entry.wake_at = Some(d);
                let epoch = entry.wake_epoch;
                self.push(d, EventKind::Wake { node: idx, epoch });
            }
        }
    }

    /// Crashes `p` by executing the crash semantics immediately (the
    /// controllable-scheduler counterpart of [`Sim::schedule_crash`]):
    /// messages still in `p`'s send pipeline never make it onto the wire.
    /// Returns `false` for an unknown node.
    pub fn crash_now(&mut self, p: ProcessId) -> bool {
        if self.idx_of(p).is_none() {
            return false;
        }
        self.crash_node(p);
        true
    }

    fn crash_node(&mut self, p: ProcessId) {
        let Some(idx) = self.idx_of(p) else {
            return;
        };
        self.nodes[idx as usize].crashed = true;
        // Messages still in p's send pipeline (departure after the crash
        // instant) never make it onto the wire.
        let now = self.now;
        let before = self.queue.len();
        let kept: Vec<Event<N>> = self
            .queue
            .drain()
            .filter(|ev| match &ev.kind {
                EventKind::Deliver { src, departed, .. } => !(*src == idx && *departed > now),
                _ => true,
            })
            .collect();
        self.stats.dropped_crash_src += (before - kept.len()) as u64;
        self.queue = kept.into_iter().collect();
        if let Some(mut wan) = self.wan.take() {
            // Uplink-stage transfers of the crashed sender were still
            // transmitting out of the host — they never fully departed,
            // whatever their nominal departure instant. Trunk-stage
            // transfers have already left the host and keep flowing.
            let (count, bytes) = wan.drop_crashed_src(idx, now);
            self.wan = Some(wan);
            self.stats.dropped_crash_src += count;
            self.stats.wan_inflight = self.stats.wan_inflight.saturating_sub(count);
            self.stats.wan_backlog_bytes = self.stats.wan_backlog_bytes.saturating_sub(bytes);
        }
    }

    /// Calls into node `p` synchronously (the controllable-scheduler
    /// counterpart of [`Sim::schedule_call`]): sends the callback produces
    /// are flushed onto the wire at the current virtual time, and the node's
    /// timer is re-read. Returns `false` (without invoking `f`) for an
    /// unknown or crashed node.
    pub fn invoke(&mut self, p: ProcessId, f: impl FnOnce(&mut N, &mut Outbox<N::Msg>)) -> bool {
        let Some(idx) = self.idx_of(p) else {
            return false;
        };
        if self.nodes[idx as usize].crashed {
            return false;
        }
        let mut out = self.take_outbox();
        f(&mut self.nodes[idx as usize].node, &mut out);
        self.flush_outbox(idx, &mut out);
        self.recycle_outbox(out);
        self.refresh_wake(idx);
        true
    }

    /// The frontier of schedulable events: the FIFO head of every link with
    /// a live (non-crashed) destination, plus every live node's pending
    /// timer wake-up. Returned in deterministic order (delivers by link,
    /// then wakes by node id). An external strategy picks one and hands it
    /// to [`Sim::fire`]; repeatedly firing the earliest frontier event is
    /// equivalent to [`Sim::run_until`]'s fixed priority-queue order.
    #[must_use]
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut heads: BTreeMap<(ProcessId, ProcessId), (Instant, u64)> = BTreeMap::new();
        for ev in self.queue.iter() {
            if let EventKind::Deliver { src, dst, .. } = &ev.kind {
                if self.nodes[*dst as usize].crashed {
                    continue;
                }
                let key = (self.nodes[*src as usize].id, self.nodes[*dst as usize].id);
                let cand = (ev.at, ev.seq);
                let slot = heads.entry(key).or_insert(cand);
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
        let mut out: Vec<PendingEvent> = heads
            .into_iter()
            .map(|((src, dst), (at, _))| PendingEvent::Deliver { src, dst, at })
            .collect();
        for (id, idx) in &self.lookup {
            let entry = &self.nodes[*idx as usize];
            if entry.crashed {
                continue;
            }
            if let Some(at) = entry.wake_at {
                out.push(PendingEvent::Wake { node: *id, at });
            }
        }
        out
    }

    /// Fires one frontier event chosen by an external strategy, advancing
    /// the clock to `max(now, event time)` — under external control events
    /// may fire out of timestamp order, which models arbitrary asynchrony:
    /// a "late" event simply executes at the later current time.
    ///
    /// A `Deliver` fires the FIFO-head message of the named link; a `Wake`
    /// fires the node's current pending wake-up. Returns `false` (state
    /// unchanged) if no matching event is pending — e.g. a stale choice
    /// replayed against a shrunk schedule.
    pub fn fire(&mut self, ev: PendingEvent) -> bool {
        let target_seq = match ev {
            PendingEvent::Deliver { src, dst, .. } => {
                let (Some(s), Some(d)) = (self.idx_of(src), self.idx_of(dst)) else {
                    return false;
                };
                let mut best: Option<(Instant, u64)> = None;
                for e in self.queue.iter() {
                    if let EventKind::Deliver {
                        src: es, dst: ed, ..
                    } = &e.kind
                    {
                        if *es == s && *ed == d {
                            let cand = (e.at, e.seq);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                }
                best.map(|(_, seq)| seq)
            }
            PendingEvent::Wake { node, .. } => {
                let Some(idx) = self.idx_of(node) else {
                    return false;
                };
                let entry = &self.nodes[idx as usize];
                if entry.crashed || entry.wake_at.is_none() {
                    return false;
                }
                let epoch = entry.wake_epoch;
                self.queue.iter().find_map(|e| match &e.kind {
                    EventKind::Wake { node: n, epoch: ep } if *n == idx && *ep == epoch => {
                        Some(e.seq)
                    }
                    _ => None,
                })
            }
        };
        let Some(seq) = target_seq else {
            return false;
        };
        let mut events = std::mem::take(&mut self.queue).into_vec();
        let pos = events
            .iter()
            .position(|e| e.seq == seq)
            .expect("selected frontier event is in the queue");
        let event = events.swap_remove(pos);
        self.queue = events.into();
        if event.at > self.now {
            self.now = event.at;
        }
        self.dispatch(event);
        true
    }
}

impl<N> Sim<N>
where
    N: SimNode,
    N::Msg: Clone + 'static,
{
    /// Enables the topology-aware WAN model (see [`WanConfig`]): every send
    /// issued after this call transmits through fair-shared uplink and
    /// trunk pipes instead of taking one latency draw. Nodes already added
    /// are attached per the config; nodes added later attach on insertion.
    ///
    /// The `Clone` bound exists solely so the duplication knob can copy
    /// deliveries — the engine's default path never clones.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] from [`WanConfig::validate`].
    pub fn set_wan(&mut self, cfg: WanConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        let ids: Vec<ProcessId> = self.nodes.iter().map(|e| e.id).collect();
        self.wan = Some(WanState::new(cfg, &ids));
        self.cloner = Some(Box::new(N::Msg::clone));
        Ok(())
    }
}

impl<N> Sim<N>
where
    N: SimNode + StateDigest,
    N::Msg: StateDigest,
{
    /// Canonical hash of the full observable system state, for the model
    /// checker's visited-state dedup: virtual time, every node's protocol
    /// state (via the node's own [`StateDigest`]), crash flags, pending
    /// wake-ups, in-flight messages in canonical link-then-arrival order,
    /// parked (partitioned-away) messages, partition blocks, and the
    /// per-link FIFO clamp matrix.
    ///
    /// Excluded by design: event sequence numbers, the outbox pool, network
    /// statistics, and the RNG — the digest is therefore sound for dedup
    /// only under a latency model that draws no randomness
    /// ([`LatencyModel::Fixed`]) and a fixed [`NetConfig`], which is what
    /// the model checker runs. Scheduled script events (crash/partition/
    /// latency/call) are folded in only as a count; externally controlled
    /// exploration injects those through [`Sim::crash_now`] and
    /// [`Sim::invoke`] instead of the queue. The WAN model is excluded for
    /// the same reason (its deliveries draw randomness): the model checker
    /// never enables it, so delay semantics under exploration are
    /// unchanged by congestion modelling.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = DigestHasher::new();
        h.write_u64(self.now.as_micros());
        h.write_u64(self.nodes.len() as u64);
        for (id, idx) in &self.lookup {
            let entry = &self.nodes[*idx as usize];
            id.digest_into(&mut h);
            h.write_bool(entry.crashed);
            entry.wake_at.digest_into(&mut h);
            h.write_u32(entry.block);
            entry.node.digest_into(&mut h);
        }
        h.write_u8(match self.partition_mode {
            PartitionMode::Loss => 0,
            PartitionMode::Delay => 1,
        });
        // In-flight messages in canonical order. (src, dst, at) is unique
        // per message: the FIFO clamp spaces same-link arrivals apart.
        let mut inflight: Vec<(ProcessId, ProcessId, Instant, Instant, &N::Msg)> = Vec::new();
        let mut scripted = 0u64;
        for ev in self.queue.iter() {
            match &ev.kind {
                EventKind::Deliver {
                    src,
                    dst,
                    departed,
                    msg,
                } => {
                    inflight.push((
                        self.nodes[*src as usize].id,
                        self.nodes[*dst as usize].id,
                        ev.at,
                        *departed,
                        msg,
                    ));
                }
                // Only the current-epoch wake is live, and it is already
                // digested through `wake_at` above; stale epochs are inert.
                EventKind::Wake { .. } => {}
                _ => scripted += 1,
            }
        }
        inflight.sort_by_key(|(src, dst, at, ..)| (*src, *dst, *at));
        h.write_u64(inflight.len() as u64);
        for (src, dst, at, departed, msg) in inflight {
            src.digest_into(&mut h);
            dst.digest_into(&mut h);
            at.digest_into(&mut h);
            departed.digest_into(&mut h);
            msg.digest_into(&mut h);
        }
        h.write_u64(scripted);
        h.write_u64(self.parked.len() as u64);
        for ((src, dst), q) in &self.parked {
            src.digest_into(&mut h);
            dst.digest_into(&mut h);
            h.write_u64(q.len() as u64);
            for (departed, msg) in q {
                departed.digest_into(&mut h);
                msg.digest_into(&mut h);
            }
        }
        for cell in &self.last_arrival {
            cell.digest_into(&mut h);
        }
        h.finish()
    }
}

/// `p`'s connectivity block under `spec` (see [`NodeEntry::block`]).
fn partition_block(spec: &PartitionSpec, p: ProcessId) -> u32 {
    match spec.block_of(p) {
        Some(b) => b as u32,
        None => BLOCK_RESIDUAL,
    }
}

impl<N: SimNode> std::fmt::Debug for Sim<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LatencyModel;

    /// Records every message it receives, tagged with arrival time.
    struct Recorder {
        seen: Vec<(Instant, ProcessId, u64)>,
        ticks: u32,
        deadline: Option<Instant>,
    }

    impl Recorder {
        fn new() -> Recorder {
            Recorder {
                seen: Vec::new(),
                ticks: 0,
                deadline: None,
            }
        }
    }

    impl SimNode for Recorder {
        type Msg = u64;
        fn on_message(&mut self, now: Instant, from: ProcessId, msg: u64, _out: &mut Outbox<u64>) {
            self.seen.push((now, from, msg));
        }
        fn on_tick(&mut self, _now: Instant, _out: &mut Outbox<u64>) {
            self.ticks += 1;
            self.deadline = None;
        }
        fn next_deadline(&self) -> Option<Instant> {
            self.deadline
        }
    }

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn two_node_sim(seed: u64, latency: LatencyModel) -> Sim<Recorder> {
        let mut sim = Sim::new(NetConfig::new(seed).with_latency(latency));
        sim.add_node(p(1), Recorder::new());
        sim.add_node(p(2), Recorder::new());
        sim
    }

    #[test]
    fn fifo_preserved_under_random_latency() {
        let mut sim = two_node_sim(
            42,
            LatencyModel::Uniform {
                lo: Span::from_micros(10),
                hi: Span::from_micros(5_000),
            },
        );
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            for k in 0..100u64 {
                out.send(p(2), k);
            }
        });
        sim.run_until(Instant::from_micros(1_000_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, (0..100).collect::<Vec<_>>(), "link must be FIFO");
    }

    #[test]
    fn crash_drops_undeparted_sends_only() {
        // Send overhead 10µs; crash at 25µs severs a 5-destination multicast
        // after the second departure.
        let mut sim: Sim<Recorder> = Sim::new(
            NetConfig::new(1)
                .with_latency(LatencyModel::Fixed(Span::from_micros(100)))
                .with_send_overhead(Span::from_micros(10)),
        );
        for i in 1..=6 {
            sim.add_node(p(i), Recorder::new());
        }
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            for i in 2..=6 {
                out.send(p(i), 7);
            }
        });
        sim.schedule_crash(Instant::from_micros(25), p(1));
        sim.run_until(Instant::from_micros(10_000));
        let received: Vec<bool> = (2..=6)
            .map(|i| !sim.node(p(i)).unwrap().seen.is_empty())
            .collect();
        assert_eq!(received, vec![true, true, false, false, false]);
        assert_eq!(sim.stats().dropped_crash_src, 3);
        assert!(sim.crashed(p(1)));
    }

    #[test]
    fn messages_to_crashed_node_are_dropped() {
        let mut sim = two_node_sim(3, LatencyModel::Fixed(Span::from_millis(1)));
        sim.schedule_crash(Instant::from_micros(10), p(2));
        sim.schedule_call(Instant::from_micros(100), p(1), |_, out| {
            out.send(p(2), 1);
        });
        sim.run_until(Instant::from_micros(100_000));
        assert!(sim.node(p(2)).unwrap().seen.is_empty());
        assert_eq!(sim.stats().dropped_crash_dst, 1);
    }

    #[test]
    fn loss_partition_drops_crossing_sends_and_inflight() {
        let mut sim = two_node_sim(4, LatencyModel::Fixed(Span::from_millis(10)));
        // In-flight message at partition time is lost.
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 1));
        sim.schedule_partition(
            Instant::from_micros(1_000),
            PartitionSpec::split([p(1)]),
            PartitionMode::Loss,
        );
        // Message sent during the partition is lost too.
        sim.schedule_call(Instant::from_micros(2_000), p(1), |_, out| {
            out.send(p(2), 2)
        });
        sim.schedule_heal(Instant::from_micros(50_000));
        // After healing, traffic flows again.
        sim.schedule_call(Instant::from_micros(60_000), p(1), |_, out| {
            out.send(p(2), 3)
        });
        sim.run_until(Instant::from_micros(200_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, vec![3]);
        assert_eq!(sim.stats().dropped_partition, 2);
    }

    #[test]
    fn delay_partition_parks_and_releases_in_order() {
        let mut sim = two_node_sim(5, LatencyModel::Fixed(Span::from_millis(1)));
        sim.schedule_partition(
            Instant::ZERO,
            PartitionSpec::split([p(1)]),
            PartitionMode::Delay,
        );
        sim.schedule_call(Instant::from_micros(10), p(1), |_, out| {
            out.send(p(2), 1);
            out.send(p(2), 2);
        });
        sim.schedule_call(Instant::from_micros(20), p(1), |_, out| {
            out.send(p(2), 3);
        });
        sim.schedule_heal(Instant::from_micros(5_000));
        sim.run_until(Instant::from_micros(100_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(sim.node(p(2)).unwrap().seen[0].0 >= Instant::from_micros(5_000));
        assert_eq!(sim.stats().parked, 3);
    }

    #[test]
    fn scheduled_latency_change_applies_to_later_sends() {
        let mut sim = two_node_sim(11, LatencyModel::Fixed(Span::from_micros(100)));
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 1));
        sim.schedule_set_latency(
            Instant::from_micros(1_000),
            LatencyModel::Fixed(Span::from_millis(50)),
        );
        sim.schedule_call(Instant::from_micros(2_000), p(1), |_, out| {
            out.send(p(2), 2)
        });
        sim.run_until(Instant::from_micros(200_000));
        let seen = &sim.node(p(2)).unwrap().seen;
        assert_eq!(seen.len(), 2);
        assert!(
            seen[0].0 < Instant::from_micros(1_000),
            "pre-change latency"
        );
        assert!(
            seen[1].0 >= Instant::from_micros(52_000),
            "post-change send must take the new 50ms latency, arrived at {:?}",
            seen[1].0
        );
    }

    #[test]
    fn wake_fires_at_deadline_once() {
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(6));
        sim.add_node(p(1), Recorder::new());
        sim.schedule_call(Instant::ZERO, p(1), |n, _| {
            n.deadline = Some(Instant::from_micros(500));
        });
        sim.run_until(Instant::from_micros(10_000));
        assert_eq!(sim.node(p(1)).unwrap().ticks, 1);
    }

    #[test]
    fn deterministic_replay_with_same_seed() {
        let run = |seed: u64| {
            let mut sim = two_node_sim(
                seed,
                LatencyModel::Uniform {
                    lo: Span::from_micros(5),
                    hi: Span::from_micros(900),
                },
            );
            sim.schedule_call(Instant::ZERO, p(1), |_, out| {
                for k in 0..20 {
                    out.send(p(2), k);
                }
            });
            sim.run_until(Instant::from_micros(100_000));
            sim.node(p(2)).unwrap().seen.clone()
        };
        assert_eq!(run(99), run(99));
        // Different seeds should (overwhelmingly) differ in timing.
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn call_on_crashed_node_is_ignored() {
        let mut sim = two_node_sim(7, LatencyModel::default());
        sim.schedule_crash(Instant::ZERO, p(1));
        sim.schedule_call(Instant::from_micros(5), p(1), |_, out| {
            out.send(p(2), 1);
        });
        sim.run_until(Instant::from_micros(10_000));
        assert!(sim.node(p(2)).unwrap().seen.is_empty());
        assert_eq!(sim.stats().sent, 0);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(8));
        sim.run_until(Instant::from_micros(1234));
        assert_eq!(sim.now(), Instant::from_micros(1234));
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(9));
        sim.add_node(p(1), Recorder::new());
        sim.add_node(p(1), Recorder::new());
    }

    #[test]
    fn sizer_counts_bytes() {
        let mut sim = two_node_sim(10, LatencyModel::default());
        sim.set_sizer(|_m| 11);
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            out.send(p(2), 1);
            out.send(p(2), 2);
        });
        sim.run_until(Instant::from_micros(10_000));
        assert_eq!(sim.stats().bytes_sent, 22);
    }

    #[test]
    fn nodes_added_out_of_id_order_keep_id_ordered_iteration() {
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(12));
        sim.add_node(p(3), Recorder::new());
        sim.add_node(p(1), Recorder::new());
        sim.add_node(p(2), Recorder::new());
        let ids: Vec<u32> = sim.nodes().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        sim.schedule_call(Instant::ZERO, p(3), |_, out| {
            out.send(p(1), 7);
            out.send(p(2), 8);
        });
        sim.run_until(Instant::from_micros(10_000));
        assert_eq!(sim.node(p(1)).unwrap().seen.len(), 1);
        assert_eq!(sim.node(p(2)).unwrap().seen.len(), 1);
        assert_eq!(sim.fifo_state_entries(), 9);
    }

    #[test]
    fn fifo_state_stays_bounded_across_heal_partition_cycles() {
        // Regression: `last_arrival` was an unbounded `HashMap` that grew an
        // entry per ever-used link and was never pruned across heal/depart
        // cycles. The dense matrix must hold exactly n² entries forever.
        let mut sim = two_node_sim(13, LatencyModel::Fixed(Span::from_micros(200)));
        let n2 = sim.fifo_state_entries();
        assert_eq!(n2, 4);
        let mut t = 1_000u64;
        for cycle in 0..200u64 {
            sim.schedule_partition(
                Instant::from_micros(t),
                PartitionSpec::split([p(1)]),
                PartitionMode::Delay,
            );
            sim.schedule_call(Instant::from_micros(t + 100), p(1), move |_, out| {
                out.send(p(2), cycle);
            });
            sim.schedule_call(Instant::from_micros(t + 100), p(2), move |_, out| {
                out.send(p(1), cycle);
            });
            sim.schedule_heal(Instant::from_micros(t + 500));
            t += 1_000;
        }
        sim.run_until(Instant::from_micros(t + 100_000));
        assert_eq!(sim.node(p(2)).unwrap().seen.len(), 200);
        assert_eq!(
            sim.fifo_state_entries(),
            n2,
            "per-link FIFO state must not grow across partition/heal cycles"
        );
    }

    impl StateDigest for Recorder {
        fn digest_into(&self, h: &mut DigestHasher) {
            h.write_u64(self.seen.len() as u64);
            for (at, from, msg) in &self.seen {
                at.digest_into(h);
                from.digest_into(h);
                msg.digest_into(h);
            }
            h.write_u32(self.ticks);
            self.deadline.digest_into(h);
        }
    }

    /// A controllable fixture: fixed latency so the digest is sound, and a
    /// helper to resolve a frontier entry by kind.
    fn controlled_sim() -> Sim<Recorder> {
        let mut sim: Sim<Recorder> = Sim::new(
            NetConfig::new(0)
                .with_latency(LatencyModel::Fixed(Span::from_micros(100)))
                .with_send_overhead(Span::from_micros(10)),
        );
        for i in 1..=3 {
            sim.add_node(p(i), Recorder::new());
        }
        sim
    }

    #[test]
    fn frontier_exposes_link_heads_and_wakes() {
        let mut sim = controlled_sim();
        sim.schedule_call(Instant::ZERO, p(1), |n, out| {
            out.send(p(2), 1);
            out.send(p(2), 2); // same link: only the head is a frontier entry
            out.send(p(3), 3);
            n.deadline = Some(Instant::from_micros(5_000));
        });
        sim.run_until(Instant::ZERO);
        let frontier = sim.pending_events();
        assert_eq!(
            frontier,
            vec![
                PendingEvent::Deliver {
                    src: p(1),
                    dst: p(2),
                    at: Instant::from_micros(110),
                },
                PendingEvent::Deliver {
                    src: p(1),
                    dst: p(3),
                    // third send: 3 × 10µs overhead + 100µs latency
                    at: Instant::from_micros(130),
                },
                PendingEvent::Wake {
                    node: p(1),
                    at: Instant::from_micros(5_000),
                },
            ]
        );
    }

    #[test]
    fn fire_respects_fifo_order_per_link() {
        let mut sim = controlled_sim();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            out.send(p(2), 1);
            out.send(p(2), 2);
        });
        sim.run_until(Instant::ZERO);
        let head = |sim: &Sim<Recorder>| sim.pending_events()[0];
        assert!(sim.fire(head(&sim)));
        assert!(sim.fire(head(&sim)));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, vec![1, 2], "fire must deliver FIFO heads in order");
        assert!(sim.pending_events().is_empty());
    }

    #[test]
    fn fire_out_of_order_advances_clock_to_max() {
        let mut sim = controlled_sim();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            out.send(p(2), 1); // arrives 110
            out.send(p(3), 2); // arrives 120
        });
        sim.run_until(Instant::ZERO);
        // Fire the later event first: the clock jumps to 120; the earlier
        // event then executes "late" at the current time, modelling an
        // arbitrarily slow link.
        let late = PendingEvent::Deliver {
            src: p(1),
            dst: p(3),
            at: Instant::from_micros(120),
        };
        assert!(sim.fire(late));
        assert_eq!(sim.now(), Instant::from_micros(120));
        let early = PendingEvent::Deliver {
            src: p(1),
            dst: p(2),
            at: Instant::from_micros(110),
        };
        assert!(sim.fire(early));
        assert_eq!(sim.now(), Instant::from_micros(120), "clock never rewinds");
        assert_eq!(
            sim.node(p(2)).unwrap().seen,
            vec![(Instant::from_micros(120), p(1), 1)]
        );
    }

    #[test]
    fn fire_stale_choice_is_a_noop() {
        let mut sim = controlled_sim();
        let before = sim.state_digest();
        assert!(!sim.fire(PendingEvent::Deliver {
            src: p(1),
            dst: p(2),
            at: Instant::ZERO,
        }));
        assert!(!sim.fire(PendingEvent::Wake {
            node: p(1),
            at: Instant::ZERO,
        }));
        assert!(!sim.fire(PendingEvent::Wake {
            node: p(9),
            at: Instant::ZERO,
        }));
        assert_eq!(sim.state_digest(), before, "failed fire must not mutate");
    }

    #[test]
    fn invoke_and_crash_now_drive_nodes_directly() {
        let mut sim = controlled_sim();
        assert!(sim.invoke(p(1), |_, out| out.send(p(2), 7)));
        assert_eq!(sim.pending_events().len(), 1);
        // The send departs 10µs after the invoke; crashing p(1) at the
        // current instant severs it while still in the send pipeline.
        assert!(sim.crash_now(p(1)));
        assert!(sim.pending_events().is_empty(), "undeparted send dropped");
        assert_eq!(sim.stats().dropped_crash_src, 1);
        assert!(!sim.invoke(p(1), |_, out| out.send(p(2), 8)), "crashed");
        assert!(!sim.crash_now(p(9)), "unknown node");
        // A message that has left its (live) sender is deliverable as usual.
        assert!(sim.invoke(p(2), |_, out| out.send(p(3), 9)));
        assert!(sim.fire(sim.pending_events()[0]));
        assert_eq!(sim.node(p(3)).unwrap().seen.len(), 1);
    }

    #[test]
    fn frontier_hides_crashed_destinations() {
        let mut sim = controlled_sim();
        assert!(sim.invoke(p(1), |_, out| {
            out.send(p(2), 1);
            out.send(p(3), 2);
        }));
        assert!(sim.crash_now(p(2)));
        let frontier = sim.pending_events();
        assert_eq!(frontier.len(), 1);
        assert!(matches!(
            frontier[0],
            PendingEvent::Deliver { dst, .. } if dst == p(3)
        ));
    }

    #[test]
    fn digest_identical_across_replays_and_unchanged_by_noop_invoke() {
        let run = |script: &[u64]| -> Vec<u64> {
            let mut sim = controlled_sim();
            let mut digests = vec![sim.state_digest()];
            assert!(sim.invoke(p(1), |_, out| {
                out.send(p(2), 1);
                out.send(p(3), 2);
            }));
            for &pick in script {
                let ev = sim.pending_events()[pick as usize];
                assert!(sim.fire(ev));
                digests.push(sim.state_digest());
            }
            digests
        };
        let a = run(&[0, 0]);
        let b = run(&[0, 0]);
        assert_eq!(a, b, "same schedule must produce the same digest trace");
        let c = run(&[1, 0]);
        assert_ne!(
            a.last(),
            c.last(),
            "different arrival orders leave different arrival timestamps"
        );

        // A no-op invoke churns the outbox pool (allocation shape) but must
        // not move the digest.
        let mut sim = controlled_sim();
        let before = sim.state_digest();
        for _ in 0..4 {
            assert!(sim.invoke(p(2), |_, _| {}));
        }
        assert_eq!(sim.state_digest(), before);
    }

    // ------------------------------------------------------------------
    // WAN model integration
    // ------------------------------------------------------------------

    use crate::wan::{WanConfig, WanLinkSpec};

    /// Capped uplink, fixed 1 ms propagation, 100-byte messages: the k-th
    /// of ten same-flow sends arrives exactly when the uplink has
    /// serialized k transfers — timing is size/capacity, not a latency
    /// draw.
    #[test]
    fn wan_capped_uplink_serializes_a_flow_at_capacity() {
        let mut sim = two_node_sim(20, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_sizer(|_m| 100);
        sim.set_wan(WanConfig::new().with_default_uplink(1_000))
            .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            for k in 0..10u64 {
                out.send(p(2), k);
            }
        });
        sim.run_until(Instant::from_micros(5_000_000));
        let seen = &sim.node(p(2)).unwrap().seen;
        assert_eq!(seen.len(), 10);
        for (k, (at, _, msg)) in seen.iter().enumerate() {
            assert_eq!(*msg, k as u64, "per-link FIFO");
            // 100 B at 1000 B/s = 100 ms per serialized transfer, +1 ms
            // propagation.
            let expect = (k as u64 + 1) * 100_000 + 1_000;
            assert_eq!(at.as_micros(), expect, "transfer {k}");
        }
        let stats = sim.stats();
        assert_eq!(stats.wan_uplink_bytes, 1_000);
        assert_eq!(stats.wan_inflight, 0);
        assert_eq!(stats.wan_inflight_peak, 10);
        assert_eq!(stats.wan_backlog_bytes, 0);
        assert_eq!(stats.wan_backlog_peak_bytes, 1_000);
    }

    #[test]
    fn wan_cross_region_routes_are_asymmetric() {
        let mut sim = two_node_sim(21, LatencyModel::Fixed(Span::from_micros(100)));
        let cfg = WanConfig::new()
            .attach(p(1), 0)
            .attach(p(2), 1)
            .with_default_uplink(1_000_000)
            .with_fallback_msg_bytes(256)
            .with_route(
                0,
                1,
                WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(40)), 1_000_000),
            )
            .with_route(
                1,
                0,
                WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(5)), 1_000_000),
            );
        sim.set_wan(cfg).unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 1));
        sim.schedule_call(Instant::ZERO, p(2), |_, out| out.send(p(1), 2));
        sim.run_until(Instant::from_micros(1_000_000));
        // 256 B over a 1 MB/s uplink (256 µs) + the same over the trunk
        // (store-and-forward, 256 µs) + directed propagation.
        let fwd = sim.node(p(2)).unwrap().seen[0].0;
        let back = sim.node(p(1)).unwrap().seen[0].0;
        assert_eq!(fwd.as_micros(), 256 + 256 + 40_000);
        assert_eq!(back.as_micros(), 256 + 256 + 5_000);
        // Both transfers cleared their uplinks.
        assert_eq!(sim.stats().wan_uplink_bytes, 512);
    }

    #[test]
    fn wan_crash_drops_transmitting_uplink_transfers() {
        let mut sim = two_node_sim(22, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_sizer(|_m| 500);
        sim.set_wan(WanConfig::new().with_default_uplink(1_000))
            .unwrap();
        // 500 B at 1000 B/s: still transmitting at 100 ms.
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 7));
        sim.schedule_crash(Instant::from_micros(100_000), p(1));
        sim.run_until(Instant::from_micros(2_000_000));
        assert!(sim.node(p(2)).unwrap().seen.is_empty());
        assert_eq!(sim.stats().dropped_crash_src, 1);
        assert_eq!(sim.stats().wan_inflight, 0);
        assert_eq!(sim.stats().wan_backlog_bytes, 0);
    }

    #[test]
    fn wan_delay_partition_parks_and_retransmits_on_heal() {
        let mut sim = two_node_sim(23, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_sizer(|_m| 500);
        sim.set_wan(WanConfig::new().with_default_uplink(1_000))
            .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 9));
        sim.schedule_partition(
            Instant::from_micros(100_000),
            PartitionSpec::split([p(1)]),
            PartitionMode::Delay,
        );
        sim.schedule_heal(Instant::from_micros(200_000));
        sim.run_until(Instant::from_micros(2_000_000));
        let seen = &sim.node(p(2)).unwrap().seen;
        assert_eq!(seen.len(), 1);
        // Heal re-admits the full 500 B (re-transmission): 200 ms heal +
        // 500 ms transmit + 1 ms propagation.
        assert_eq!(seen[0].0.as_micros(), 701_000);
        assert_eq!(sim.stats().parked, 1);
        assert_eq!(sim.stats().wan_inflight, 0);
    }

    #[test]
    fn wan_loss_partition_drops_transfers_midflight() {
        let mut sim = two_node_sim(24, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_sizer(|_m| 500);
        sim.set_wan(WanConfig::new().with_default_uplink(1_000))
            .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 9));
        sim.schedule_partition(
            Instant::from_micros(100_000),
            PartitionSpec::split([p(1)]),
            PartitionMode::Loss,
        );
        sim.run_until(Instant::from_micros(2_000_000));
        assert!(sim.node(p(2)).unwrap().seen.is_empty());
        assert_eq!(sim.stats().dropped_partition, 1);
        assert_eq!(sim.stats().wan_inflight, 0);
    }

    #[test]
    fn wan_duplication_keeps_fifo_and_counts_copies() {
        let mut sim = two_node_sim(25, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_wan(
            WanConfig::new()
                .with_default_uplink(1_000_000)
                .with_duplication(1_000),
        )
        .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            for k in 0..3u64 {
                out.send(p(2), k);
            }
        });
        sim.run_until(Instant::from_micros(1_000_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, vec![0, 0, 1, 1, 2, 2], "copies arrive adjacent");
        assert_eq!(sim.stats().wan_duplicated, 3);
        assert_eq!(sim.stats().delivered, 6);
        assert_eq!(sim.stats().sent, 3, "duplication is a wire artifact");
    }

    #[test]
    fn wan_reorder_knob_never_breaks_link_fifo() {
        let mut sim = two_node_sim(26, LatencyModel::Fixed(Span::from_micros(200)));
        sim.set_wan(
            WanConfig::new()
                .with_default_uplink(1_000_000)
                .with_reorder(1_000, Span::from_millis(5)),
        )
        .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            for k in 0..50u64 {
                out.send(p(2), k);
            }
        });
        sim.run_until(Instant::from_micros(5_000_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn wan_uplink_capacity_change_reshares_inflight() {
        let mut sim = two_node_sim(27, LatencyModel::Fixed(Span::from_millis(1)));
        sim.set_sizer(|_m| 1_000);
        sim.set_wan(WanConfig::new().with_default_uplink(1_000_000))
            .unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| out.send(p(2), 1));
        // Halfway through the 1 ms transmission, throttle to 1000 B/s:
        // 500 B remain → 500 ms more, + 1 ms propagation.
        sim.schedule_set_wan_uplink(Instant::from_micros(500), p(1), 1_000);
        sim.run_until(Instant::from_micros(2_000_000));
        let seen = &sim.node(p(2)).unwrap().seen;
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0.as_micros(), 500 + 500_000 + 1_000);
    }

    #[test]
    fn wan_link_congestion_window_slows_the_trunk() {
        let mut sim = two_node_sim(28, LatencyModel::Fixed(Span::from_micros(100)));
        let fast = WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(10)), 1_000_000);
        sim.set_wan(
            WanConfig::new()
                .attach(p(1), 0)
                .attach(p(2), 1)
                .with_default_uplink(1_000_000)
                .with_fallback_msg_bytes(1_000)
                .with_route(0, 1, fast),
        )
        .unwrap();
        // Degrade the trunk before the transfer reaches it.
        sim.schedule_set_wan_link(
            Instant::from_micros(10),
            0,
            1,
            WanLinkSpec::new(LatencyModel::Fixed(Span::from_millis(10)), 1_000),
        );
        sim.schedule_call(Instant::from_micros(100), p(1), |_, out| out.send(p(2), 5));
        sim.run_until(Instant::from_micros(5_000_000));
        let seen = &sim.node(p(2)).unwrap().seen;
        assert_eq!(seen.len(), 1);
        // 100 µs send + 1 ms uplink + 1 s degraded trunk + 10 ms latency.
        assert_eq!(seen[0].0.as_micros(), 100 + 1_000 + 1_000_000 + 10_000);
    }

    #[test]
    fn wan_replays_bit_identically_with_equal_seeds() {
        let run = |seed: u64| {
            let mut sim = two_node_sim(
                seed,
                LatencyModel::Uniform {
                    lo: Span::from_micros(50),
                    hi: Span::from_micros(2_000),
                },
            );
            sim.set_sizer(|m| 64 + (*m as usize % 128));
            sim.set_wan(
                WanConfig::new()
                    .attach(p(1), 0)
                    .attach(p(2), 1)
                    .with_default_uplink(8_000)
                    .with_route(
                        0,
                        1,
                        WanLinkSpec::new(
                            LatencyModel::Uniform {
                                lo: Span::from_millis(10),
                                hi: Span::from_millis(60),
                            },
                            16_000,
                        ),
                    )
                    .with_duplication(200)
                    .with_reorder(300, Span::from_millis(4)),
            )
            .unwrap();
            sim.schedule_call(Instant::ZERO, p(1), |_, out| {
                for k in 0..30u64 {
                    out.send(p(2), k);
                }
            });
            sim.run_until(Instant::from_micros(10_000_000));
            sim.node(p(2)).unwrap().seen.clone()
        };
        assert_eq!(run(404), run(404));
        assert_ne!(run(404), run(405));
    }

    #[test]
    fn wan_send_to_unknown_destination_is_dropped_quietly() {
        let mut sim = two_node_sim(29, LatencyModel::default());
        sim.set_wan(WanConfig::new()).unwrap();
        sim.schedule_call(Instant::ZERO, p(1), |_, out| {
            out.send(p(99), 1);
            out.send(p(2), 2);
        });
        sim.run_until(Instant::from_micros(1_000_000));
        let seen: Vec<u64> = sim.node(p(2)).unwrap().seen.iter().map(|s| s.2).collect();
        assert_eq!(seen, vec![2]);
        assert_eq!(sim.stats().wan_inflight, 0);
    }

    #[test]
    fn try_new_rejects_inverted_uniform_bounds() {
        let bad = NetConfig::new(1).with_latency(LatencyModel::Uniform {
            lo: Span::from_millis(5),
            hi: Span::from_millis(1),
        });
        assert!(Sim::<Recorder>::try_new(bad).is_err());
    }
}
