//! Property fleet for the WAN model: per-link FIFO must survive every
//! seeded combination of fair-share bandwidth, high-variance latency,
//! duplication and the reorder knob, and the transfer counters must
//! balance exactly at quiescence.
//!
//! The clamp under test is the same `last_arrival` FIFO clamp the classic
//! path uses — the WAN path feeds it scheduled arrivals that already went
//! through two bandwidth stages and a reorder hold, so these runs exercise
//! far wilder candidate arrival times than the constant-latency model
//! ever produces. Failures reproduce exactly from the printed inputs.

use newtop_sim::{LatencyModel, NetConfig, Outbox, Sim, SimNode, WanConfig, WanLinkSpec};
use newtop_types::{Instant, ProcessId, Span};
use proptest::prelude::*;

/// Records every arrival; sends nothing back.
struct Recorder {
    seen: Vec<(Instant, ProcessId, u64)>,
}

impl SimNode for Recorder {
    type Msg = u64;
    fn on_message(&mut self, now: Instant, from: ProcessId, msg: u64, _out: &mut Outbox<u64>) {
        self.seen.push((now, from, msg));
    }
}

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// Deterministic per-message wire size in `1..=256` bytes, so the test can
/// recompute the exact byte totals the counters must report.
fn msg_bytes(m: u64) -> usize {
    1 + ((m.wrapping_mul(37) % 256) as usize)
}

/// Asserts `seen` is FIFO per sender and returns, per sender, how many
/// messages arrived (duplicates included).
fn assert_per_link_fifo(seen: &[(Instant, ProcessId, u64)]) {
    let mut last_at = Instant::ZERO;
    let mut last_msg: std::collections::BTreeMap<ProcessId, u64> = Default::default();
    for &(at, from, msg) in seen {
        assert!(at >= last_at, "arrival times must be non-decreasing");
        last_at = at;
        if let Some(&prev) = last_msg.get(&from) {
            assert!(
                msg == prev || msg == prev + 1,
                "link {from} reordered: {msg} after {prev}"
            );
        } else {
            assert_eq!(msg, 0, "link {from} must start at message 0");
        }
        last_msg.insert(from, msg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full congested-WAN simulation
        .. ProptestConfig::default()
    })]

    /// One congested flow through a capped uplink and (optionally) a
    /// cross-region trunk, under high-variance latency plus duplication
    /// and reorder knobs: deliveries stay FIFO and every counter balances.
    #[test]
    fn wan_fifo_holds_for_every_seeded_model(
        seed in 0u64..100_000,
        msgs in 1u64..60,
        uplink_bps in 2_000u64..200_000,
        hi_ms in 1u64..50,
        dup_pm in 0u32..=1000,
        reorder_pm in 0u32..=1000,
        cross_region in any::<bool>(),
    ) {
        let latency = LatencyModel::Uniform {
            lo: Span::from_micros(10),
            hi: Span::from_millis(hi_ms),
        };
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(seed).with_latency(latency));
        sim.add_node(p(1), Recorder { seen: Vec::new() });
        sim.add_node(p(2), Recorder { seen: Vec::new() });
        sim.set_sizer(|m| msg_bytes(*m));
        let mut cfg = WanConfig::new()
            .with_default_uplink(uplink_bps)
            .with_duplication(dup_pm)
            .with_reorder(reorder_pm, Span::from_millis(10));
        if cross_region {
            cfg = cfg
                .attach(p(1), 0)
                .attach(p(2), 1)
                .with_route(0, 1, WanLinkSpec::new(latency, uplink_bps));
        }
        sim.set_wan(cfg).unwrap();
        sim.schedule_call(Instant::ZERO, p(1), move |_, out| {
            for k in 0..msgs {
                out.send(p(2), k);
            }
        });
        // Generous horizon: worst case ~60 msgs * 257 B over two 2 kB/s
        // stages is ~15 s of virtual time.
        sim.run_until(Instant::from_micros(300_000_000));

        let seen = &sim.node(p(2)).unwrap().seen;
        assert_per_link_fifo(seen);
        let payloads: Vec<u64> = seen.iter().map(|s| s.2).collect();
        let mut deduped = payloads.clone();
        deduped.dedup();
        prop_assert_eq!(deduped, (0..msgs).collect::<Vec<_>>(),
            "every message delivered exactly once after dedup");

        let stats = sim.stats();
        prop_assert_eq!(stats.sent, msgs);
        prop_assert_eq!(stats.delivered, msgs + stats.wan_duplicated,
            "every delivery is an original or a counted duplicate");
        prop_assert_eq!(stats.wan_inflight, 0, "quiescent: nothing in flight");
        prop_assert_eq!(stats.wan_backlog_bytes, 0, "quiescent: no backlog");
        let total: u64 = (0..msgs).map(|k| msg_bytes(k) as u64).sum();
        prop_assert_eq!(stats.wan_uplink_bytes, total,
            "uplink carried every admitted byte exactly once");
        prop_assert!(stats.wan_backlog_peak_bytes <= total);
        prop_assert!(stats.wan_inflight_peak as u64 <= msgs);
    }

    /// Two senders congesting one receiver's region: each link is FIFO on
    /// its own even though the trunk fair-shares between them.
    #[test]
    fn wan_fifo_is_per_link_under_fair_sharing(
        seed in 0u64..100_000,
        msgs in 1u64..30,
        uplink_bps in 2_000u64..50_000,
        hi_ms in 1u64..20,
    ) {
        let latency = LatencyModel::Uniform {
            lo: Span::from_micros(10),
            hi: Span::from_millis(hi_ms),
        };
        let mut sim: Sim<Recorder> = Sim::new(NetConfig::new(seed).with_latency(latency));
        for i in 1..=3 {
            sim.add_node(p(i), Recorder { seen: Vec::new() });
        }
        sim.set_sizer(|m| msg_bytes(*m));
        sim.set_wan(
            WanConfig::new()
                .attach(p(1), 0)
                .attach(p(2), 0)
                .attach(p(3), 1)
                .with_default_uplink(uplink_bps)
                .with_route(0, 1, WanLinkSpec::new(latency, uplink_bps)),
        )
        .unwrap();
        for src in [1u32, 2] {
            sim.schedule_call(Instant::ZERO, p(src), move |_, out| {
                for k in 0..msgs {
                    out.send(p(3), k);
                }
            });
        }
        sim.run_until(Instant::from_micros(300_000_000));

        let seen = &sim.node(p(3)).unwrap().seen;
        assert_per_link_fifo(seen);
        for src in [1u32, 2] {
            let from_src: Vec<u64> =
                seen.iter().filter(|s| s.1 == p(src)).map(|s| s.2).collect();
            prop_assert_eq!(from_src, (0..msgs).collect::<Vec<_>>(),
                "sender {} must arrive in send order", src);
        }
        let stats = sim.stats();
        prop_assert_eq!(stats.delivered, 2 * msgs);
        prop_assert_eq!(stats.wan_inflight, 0);
        prop_assert_eq!(stats.wan_backlog_bytes, 0);
    }
}
